package isa

import (
	"fmt"

	"repro/internal/core"
)

// PrivateBase is the base address of a process's private memory (static
// data and stack); private accesses are never checked (§2.2).
const PrivateBase uint64 = 0x10000

// PrivateWords is the size of the interpreter's private memory.
const PrivateWords = 1 << 15

// SyscallHandler services SYSCALL instructions; the interpreter gives
// full access to the machine state (the cluster OS layer hooks in here).
type SyscallHandler func(p *core.Proc, m *Interp, code int64)

// retHalt is the link-register sentinel that makes RET halt the machine.
const retHalt = ^uint64(0)

// Interp executes a Program on a Shasta process. Instructions cost one
// cycle each; checked pseudo-instructions additionally run the real
// in-line check logic (and protocol) through the core API.
type Interp struct {
	Prog    *Program
	Regs    [NumRegs]uint64
	PC      int
	priv    []uint64
	Syscall SyscallHandler
	// MaxInstrs guards against runaway programs (0 = default limit).
	MaxInstrs int64
	// Sanitize enables the dynamic instrumentation sanitizer: in a
	// rewritten program, any raw LDQ/STQ/LDQL/STQC that reaches a shared
	// address faults (the rewriter should have converted it to a checked
	// form or covered it by a batch), and every Covered load is
	// cross-checked against the protocol state before it executes raw.
	// This is the dynamic counterpart of the static verifier in package
	// rewriter.
	Sanitize bool
	executed int64
	halted   bool
	// openBatch is the active BATCHCHK region, if any.
	openBatch *core.Batch
}

// NewInterp creates an interpreter for the program.
func NewInterp(prog *Program) *Interp {
	return &Interp{Prog: prog, priv: make([]uint64, PrivateWords), MaxInstrs: 50_000_000}
}

// Executed returns the number of instructions retired.
func (m *Interp) Executed() int64 { return m.executed }

// privSlot maps a private address to a slot in the private memory.
func (m *Interp) privSlot(addr uint64) (int, error) {
	if addr < PrivateBase || addr >= PrivateBase+PrivateWords*8 {
		return 0, fmt.Errorf("isa: private address %#x out of range", addr)
	}
	return int(addr-PrivateBase) / 8, nil
}

// WritePriv initializes private memory (argument passing).
func (m *Interp) WritePriv(addr uint64, v uint64) error {
	s, err := m.privSlot(addr)
	if err != nil {
		return err
	}
	m.priv[s] = v
	return nil
}

// ReadPriv reads private memory (result extraction).
func (m *Interp) ReadPriv(addr uint64) (uint64, error) {
	s, err := m.privSlot(addr)
	if err != nil {
		return 0, err
	}
	return m.priv[s], nil
}

// Run executes the program on the given Shasta process, starting at the
// entry procedure, until HALT.
func (m *Interp) Run(p *core.Proc, entry string) error {
	ps, ok := m.Prog.FindProc(entry)
	if !ok {
		return fmt.Errorf("isa: no procedure %q", entry)
	}
	m.PC = ps.Start
	m.Regs[RegSP] = PrivateBase + PrivateWords*8 - 1024 // headroom for positive offsets
	m.Regs[RegGP] = PrivateBase
	m.Regs[RegRA] = retHalt // returning from entry halts
	m.halted = false
	for !m.halted {
		if m.PC < 0 || m.PC >= len(m.Prog.Instrs) {
			return fmt.Errorf("isa: PC %d out of range", m.PC)
		}
		if m.executed++; m.executed > m.MaxInstrs {
			return fmt.Errorf("isa: exceeded %d instructions", m.MaxInstrs)
		}
		if err := m.step(p); err != nil {
			return fmt.Errorf("isa: @%d %s: %w", m.PC, m.Prog.Disassemble(m.PC), err)
		}
	}
	return nil
}

func (m *Interp) reg(r uint8) uint64 {
	if r == RegZero {
		return 0
	}
	return m.Regs[r]
}

func (m *Interp) setReg(r uint8, v uint64) {
	if r != RegZero {
		m.Regs[r] = v
	}
}

func (m *Interp) ea(in Instr) uint64 { return m.reg(in.Ra) + uint64(in.Imm) }

// load performs a data read at the address, checked or raw per op.
func (m *Interp) load(p *core.Proc, in Instr, checked bool) (uint64, error) {
	addr := m.ea(in)
	if addr < core.SharedBase {
		s, err := m.privSlot(addr)
		if err != nil {
			return 0, err
		}
		p.ChargeTime(core.CatTask, 1)
		return m.priv[s], nil
	}
	if m.openBatch != nil {
		if m.Sanitize && !m.openBatch.Covers(addr) {
			return 0, fmt.Errorf("sanitizer: batched load outside the pinned window at %#x", addr)
		}
		return m.openBatch.Load(addr), nil
	}
	if checked {
		return p.Load(addr), nil
	}
	if in.Covered {
		if m.Sanitize && !p.ElidedLoadValid(addr) {
			return 0, fmt.Errorf("sanitizer: elided check but line not valid at %#x", addr)
		}
		return p.ElidedLoad(addr), nil
	}
	if m.Sanitize && m.Prog.Rewritten {
		return 0, fmt.Errorf("sanitizer: raw load of shared address %#x in rewritten program", addr)
	}
	return p.RawLoad(addr), nil
}

func (m *Interp) store(p *core.Proc, in Instr, v uint64, checked bool) error {
	addr := m.ea(in)
	if addr < core.SharedBase {
		s, err := m.privSlot(addr)
		if err != nil {
			return err
		}
		p.ChargeTime(core.CatTask, 1)
		m.priv[s] = v
		return nil
	}
	if m.openBatch != nil {
		if m.Sanitize && !m.openBatch.Covers(addr) {
			return fmt.Errorf("sanitizer: batched store outside the pinned window at %#x", addr)
		}
		m.openBatch.Store(addr, v)
		return nil
	}
	if checked {
		p.Store(addr, v)
		return nil
	}
	if m.Sanitize && m.Prog.Rewritten {
		return fmt.Errorf("sanitizer: raw store to shared address %#x in rewritten program", addr)
	}
	p.RawStore(addr, v)
	return nil
}

func (m *Interp) step(p *core.Proc) error {
	in := m.Prog.Instrs[m.PC]
	next := m.PC + 1
	charge1 := func() { p.ChargeTime(core.CatTask, 1) }

	switch in.Op {
	case NOP:
		charge1()
	case HALT:
		charge1()
		m.halted = true
	case LDA:
		charge1()
		m.setReg(in.Rd, m.reg(in.Ra)+uint64(in.Imm))
	case LDQ:
		// Plain loads are unchecked: in an un-rewritten binary every
		// load is one of these; the rewriter converts possibly-shared
		// ones to CHKLD.
		v, err := m.load(p, in, false)
		if err != nil {
			return err
		}
		m.setReg(in.Rd, v)
	case CHKLD:
		v, err := m.load(p, in, true)
		if err != nil {
			return err
		}
		m.setReg(in.Rd, v)
	case STQ:
		if err := m.store(p, in, m.reg(in.Rd), false); err != nil {
			return err
		}
	case CHKST:
		if err := m.store(p, in, m.reg(in.Rd), true); err != nil {
			return err
		}
	case LDQL, CHKLDL:
		addr := m.ea(in)
		if addr < core.SharedBase {
			return fmt.Errorf("ldq_l to private memory")
		}
		if in.Op == LDQL && m.Sanitize && m.Prog.Rewritten {
			return fmt.Errorf("sanitizer: raw ldq_l of shared address %#x in rewritten program", addr)
		}
		m.setReg(in.Rd, p.LoadLocked(addr))
	case STQC, CHKSTC:
		addr := m.ea(in)
		if addr < core.SharedBase {
			return fmt.Errorf("stq_c to private memory")
		}
		if in.Op == STQC && m.Sanitize && m.Prog.Rewritten {
			return fmt.Errorf("sanitizer: raw stq_c to shared address %#x in rewritten program", addr)
		}
		ok := p.StoreCond(addr, m.reg(in.Rd))
		if ok {
			m.setReg(in.Rd, 1)
		} else {
			m.setReg(in.Rd, 0)
		}
	case MB:
		p.MemBar()
	case MBPROT:
		// The protocol part of the barrier already ran in MemBar; this
		// pseudo-instruction only accounts the extra call.
		p.ChargeTime(core.CatCheck, 1)
	case POLL:
		p.Poll()
	case PFXEXCL:
		p.PrefetchExclusive(m.ea(in))
	case BATCHCHK:
		if m.openBatch != nil {
			return fmt.Errorf("nested batch")
		}
		addr := m.ea(in)
		if addr >= core.SharedBase {
			m.openBatch = p.BatchStart(core.Range{Addr: addr, Bytes: in.BatchBytes, Write: in.Rd != 0})
		}
	case BATCHEND:
		if m.openBatch != nil {
			p.BatchEnd(m.openBatch)
			m.openBatch = nil
		}
	case ADDQ, SUBQ, MULQ, AND, OR, XOR, SLL, SRL, CMPEQ, CMPLT:
		charge1()
		a := m.reg(in.Ra)
		b := m.reg(in.Rb)
		if in.UseImm {
			b = uint64(in.Imm)
		}
		var v uint64
		switch in.Op {
		case ADDQ:
			v = a + b
		case SUBQ:
			v = a - b
		case MULQ:
			v = a * b
		case AND:
			v = a & b
		case OR:
			v = a | b
		case XOR:
			v = a ^ b
		case SLL:
			v = a << (b & 63)
		case SRL:
			v = a >> (b & 63)
		case CMPEQ:
			if a == b {
				v = 1
			}
		case CMPLT:
			if int64(a) < int64(b) {
				v = 1
			}
		}
		m.setReg(in.Rd, v)
	case BEQ, BNE, BLT, BGE:
		charge1()
		a := m.reg(in.Ra)
		taken := false
		switch in.Op {
		case BEQ:
			taken = a == 0
		case BNE:
			taken = a != 0
		case BLT:
			taken = int64(a) < 0
		case BGE:
			taken = int64(a) >= 0
		}
		if taken {
			next = in.Target
		}
	case BR:
		charge1()
		next = in.Target
	case JSR:
		charge1()
		m.Regs[RegRA] = uint64(m.PC + 1)
		next = in.Target
	case RET:
		charge1()
		ra := m.Regs[RegRA]
		if ra == retHalt {
			m.halted = true
		} else {
			next = int(ra)
		}
	case SYSCALL:
		charge1()
		if m.Syscall != nil {
			m.Syscall(p, m, in.Imm)
		}
	default:
		return fmt.Errorf("unimplemented op %v", in.Op)
	}
	m.PC = next
	return nil
}
