package clusteros

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// This file implements the file system calls with shared-memory argument
// validation (§4.1): a system call is logically a batch of loads and stores
// to the ranges its arguments reference, validated with the same mechanism
// as batched miss checks. While the ranges are validated for an in-flight
// call, the protocol disallows direct downgrades of their lines (§4.3.4
// footnote).

// validationCost models the wrapper's per-call work: walking the argument
// ranges and checking each line's state, which is more expensive under
// SMP-Shasta because of the locking on shared protocol state (Table 2).
func (os *OS) validationCost(bytes int) sim.Time {
	cfg := os.sys.Cfg
	lines := (bytes + cfg.LineSize - 1) / cfg.LineSize
	per := cfg.Cost.ValidateRange + sim.Time(lines)*38
	if cfg.SMP {
		per += sim.Time(lines) * cfg.Cost.QueueLock
	}
	return per
}

// Open opens a file whose name may live in shared memory; nameAddr is 0
// for a private-memory name (no validation needed — §2.2: static and stack
// areas are not shared).
func (os *OS) Open(p *core.Proc, path string, nameAddr uint64) (int, error) {
	st := os.state(p)
	os.emitSyscall(p, "open", int64(len(path)))
	p.SyscallEnter()
	defer p.SyscallExit()
	if nameAddr != 0 && os.sys.Cfg.Checks {
		p.Stats().N[core.CntSyscallValidations]++
		p.PinRange(nameAddr, len(path))
		defer p.UnpinAll()
		b := p.BatchStart(core.Range{Addr: nameAddr, Bytes: len(path), Write: false})
		p.BatchEnd(b)
		p.ChargeTime(core.CatTask, os.validationCost(len(path)))
	}
	p.ChargeTime(core.CatTask, os.sys.Cfg.Cost.SyscallOpen)
	exists, cold := os.fs.Open(p.Node(), path)
	if !exists {
		return -1, fmt.Errorf("clusteros: open %q: no such file", path)
	}
	if cold {
		p.ChargeTime(core.CatBlocked, os.sys.Cfg.Cost.DiskAccess)
	}
	st.nextFD++
	st.fds[st.nextFD] = &fd{path: path}
	return st.nextFD, nil
}

// Close releases a file descriptor.
func (os *OS) Close(p *core.Proc, fdnum int) error {
	st := os.state(p)
	p.ChargeTime(core.CatTask, os.sys.Cfg.Cost.SyscallTrap)
	if st.fds[fdnum] == nil {
		return fmt.Errorf("clusteros: close: bad fd %d", fdnum)
	}
	delete(st.fds, fdnum)
	return nil
}

// Read reads n bytes from the file into shared memory at bufAddr,
// validating (fetching exclusive) the buffer lines first so the kernel's
// stores are not lost (§4.1). It returns the bytes read.
func (os *OS) Read(p *core.Proc, fdnum int, bufAddr uint64, n int) (int, error) {
	st := os.state(p)
	f := st.fds[fdnum]
	if f == nil {
		return 0, fmt.Errorf("clusteros: read: bad fd %d", fdnum)
	}
	os.emitSyscall(p, "read", int64(n))
	p.SyscallEnter()
	defer p.SyscallExit()

	data, cold, err := os.fs.ReadAt(p.Node(), f.path, f.off, n)
	if err != nil {
		return 0, err
	}
	// Base kernel cost of the read (Table 2, standard application column).
	cost := os.sys.Cfg.Cost.SyscallReadBase + sim.Time(float64(len(data))*os.sys.Cfg.Cost.ReadPerByte)
	p.ChargeTime(core.CatTask, cost)
	if cold {
		p.ChargeTime(core.CatBlocked, os.sys.Cfg.Cost.DiskAccess)
	}

	if bufAddr >= core.SharedBase {
		// Validate the buffer: exclusive copies of all lines written by
		// the system call (§4.1).
		if os.sys.Cfg.Checks {
			p.Stats().N[core.CntSyscallValidations]++
			p.ChargeTime(core.CatTask, os.validationCost(len(data)))
		}
		p.PinRange(bufAddr, len(data))
		defer p.UnpinAll()
		b := p.BatchStart(core.Range{Addr: bufAddr, Bytes: len(data), Write: true})
		for i := 0; i < len(data); i += 8 {
			var w uint64
			for j := 0; j < 8 && i+j < len(data); j++ {
				w |= uint64(data[i+j]) << (8 * j)
			}
			b.Store(bufAddr+uint64(i), w)
		}
		p.BatchEnd(b)
	}
	f.off += len(data)
	return len(data), nil
}

// Write writes n bytes from shared memory at bufAddr to the file,
// validating (fetching at least shared copies of) the buffer lines (§4.1).
func (os *OS) Write(p *core.Proc, fdnum int, bufAddr uint64, n int) (int, error) {
	st := os.state(p)
	f := st.fds[fdnum]
	if f == nil {
		return 0, fmt.Errorf("clusteros: write: bad fd %d", fdnum)
	}
	os.emitSyscall(p, "write", int64(n))
	p.SyscallEnter()
	defer p.SyscallExit()

	data := make([]byte, n)
	if bufAddr >= core.SharedBase {
		if os.sys.Cfg.Checks {
			p.Stats().N[core.CntSyscallValidations]++
			p.ChargeTime(core.CatTask, os.validationCost(n))
		}
		p.PinRange(bufAddr, n)
		defer p.UnpinAll()
		b := p.BatchStart(core.Range{Addr: bufAddr, Bytes: n, Write: false})
		for i := 0; i < n; i += 8 {
			w := b.Load(bufAddr + uint64(i))
			for j := 0; j < 8 && i+j < n; j++ {
				data[i+j] = byte(w >> (8 * j))
			}
		}
		p.BatchEnd(b)
	}
	cost := os.sys.Cfg.Cost.SyscallReadBase + sim.Time(float64(n)*os.sys.Cfg.Cost.ReadPerByte)
	p.ChargeTime(core.CatTask, cost)
	if err := os.fs.WriteAt(p.Node(), f.path, f.off, data); err != nil {
		return 0, err
	}
	f.off += n
	return n, nil
}

// Seek repositions a file descriptor.
func (os *OS) Seek(p *core.Proc, fdnum int, off int) error {
	st := os.state(p)
	f := st.fds[fdnum]
	if f == nil {
		return fmt.Errorf("clusteros: seek: bad fd %d", fdnum)
	}
	p.ChargeTime(core.CatTask, os.sys.Cfg.Cost.SyscallTrap)
	f.off = off
	return nil
}
