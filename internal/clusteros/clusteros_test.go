package clusteros

import (
	"testing"

	"repro/internal/clusterfs"
	"repro/internal/core"
	"repro/internal/sim"
)

func newOS(t *testing.T) (*core.System, *OS) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.SharedBytes = 512 << 10
	cfg.MaxTime = sim.Cycles(120e6)
	cfg.ProtocolProcs = true // daemons block in syscalls; someone must serve
	sys := core.Build(core.WithConfig(cfg))
	return sys, New(sys, clusterfs.New(cfg.Nodes))
}

func TestForkWaitAcrossNodes(t *testing.T) {
	sys, os := newOS(t)
	childRan := false
	var childNode int
	sys.Spawn("init", 0, func(p *core.Proc) {
		os.Attach(p)
		// Fork onto another node (§4.2).
		pid := os.Fork(p, sys.Eng.Config().CPUsPerNode, func(c *core.Proc) {
			childRan = true
			childNode = c.Node()
			c.Compute(5000)
		})
		if pid <= 0 {
			t.Errorf("fork returned %d", pid)
		}
		got, _ := os.Wait(p)
		if got != pid {
			t.Errorf("wait returned pid %d want %d", got, pid)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan || childNode != 1 {
		t.Fatalf("childRan=%v node=%d", childRan, childNode)
	}
}

func TestGlobalPIDsUnique(t *testing.T) {
	sys, os := newOS(t)
	pids := map[int]bool{}
	sys.Spawn("init", 0, func(p *core.Proc) {
		os.Attach(p)
		pids[os.Getpid(p)] = true
		for i := 0; i < 5; i++ {
			cpu := i % sys.Eng.NumCPUs()
			pid := os.Fork(p, cpu, func(c *core.Proc) {
				c.Compute(1000)
			})
			if pids[pid] {
				t.Errorf("duplicate pid %d", pid)
			}
			pids[pid] = true
		}
		for i := 0; i < 5; i++ {
			os.Wait(p)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPidBlockUnblock(t *testing.T) {
	sys, os := newOS(t)
	var daemonPID int
	woke := false
	sys.Spawn("init", 0, func(p *core.Proc) {
		os.Attach(p)
		daemonPID = os.Fork(p, sys.Eng.Config().CPUsPerNode, func(c *core.Proc) {
			os.PidBlock(c) // sleep until the server needs us
			woke = true
		})
		p.Compute(20000)
		if woke {
			t.Error("daemon woke before unblock")
		}
		os.PidUnblock(p, daemonPID)
		os.Wait(p)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Fatal("daemon never woke")
	}
}

func TestKillSignalDelivery(t *testing.T) {
	sys, os := newOS(t)
	var got []int
	sys.Spawn("init", 0, func(p *core.Proc) {
		os.Attach(p)
		pid := os.Fork(p, 1, func(c *core.Proc) {
			for len(got) == 0 {
				c.Compute(500)
				got = append(got, os.Sigpending(c)...)
			}
		})
		p.Compute(5000)
		if err := os.Kill(p, pid, 15); err != nil {
			t.Error(err)
		}
		os.Wait(p)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 15 {
		t.Fatalf("signals=%v", got)
	}
}

func TestShmgetShmatSharing(t *testing.T) {
	sys, os := newOS(t)
	sys.Spawn("init", 0, func(p *core.Proc) {
		os.Attach(p)
		seg := os.Shmget(p, 4096, core.AllocOptions{Home: 0})
		addr, err := os.Shmat(p, seg)
		if err != nil {
			t.Error(err)
			return
		}
		p.Store(addr, 12345)
		p.MemBar()
		// Child on another node attaches the same segment and reads.
		os.Fork(p, sys.Eng.Config().CPUsPerNode, func(c *core.Proc) {
			caddr, err := os.Shmat(c, seg)
			if err != nil {
				t.Error(err)
				return
			}
			if v := c.Load(caddr); v != 12345 {
				t.Errorf("child read %d", v)
			}
		})
		os.Wait(p)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFileReadWriteWithValidation(t *testing.T) {
	sys, os := newOS(t)
	os.FS().Create("/data")
	sys.Spawn("init", 0, func(p *core.Proc) {
		os.Attach(p)
		buf := sys.Alloc(8192, core.AllocOptions{Home: 0})
		// Fill the shared buffer, write it out, read it back elsewhere.
		for i := 0; i < 1024; i++ {
			p.Store(buf+uint64(i*8), uint64(i)*7)
		}
		p.MemBar()
		fd, err := os.Open(p, "/data", 0)
		if err != nil {
			t.Error(err)
			return
		}
		if n, err := os.Write(p, fd, buf, 8192); n != 8192 || err != nil {
			t.Errorf("write n=%d err=%v", n, err)
		}
		dst := sys.Alloc(8192, core.AllocOptions{Home: 0})
		os.Seek(p, fd, 0)
		if n, err := os.Read(p, fd, dst, 8192); n != 8192 || err != nil {
			t.Errorf("read n=%d err=%v", n, err)
		}
		for i := 0; i < 1024; i++ {
			if v := p.Load(dst + uint64(i*8)); v != uint64(i)*7 {
				t.Errorf("dst[%d]=%d", i, v)
				break
			}
		}
		os.Close(p, fd)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if st := sys.AggregateStats(); st.SyscallValidations() < 2 {
		t.Fatalf("validations=%d", st.SyscallValidations())
	}
}

// TestValidationCostShape checks Table 2's shape: reads into shared memory
// cost more than the standard call, and SMP-Shasta costs more than Base.
func TestValidationCostShape(t *testing.T) {
	measure := func(smp, shared bool) float64 {
		cfg := core.DefaultConfig()
		cfg.SMP = smp
		cfg.SharedBytes = 512 << 10
		cfg.MaxTime = sim.Cycles(120e6)
		sys := core.Build(core.WithConfig(cfg))
		os := New(sys, clusterfs.New(cfg.Nodes))
		os.FS().Create("/t")
		var avg float64
		sys.Spawn("m", 0, func(p *core.Proc) {
			os.Attach(p)
			buf := sys.Alloc(8192, core.AllocOptions{Home: 0})
			fd, _ := os.Open(p, "/t", 0)
			seed := sys.Alloc(8192, core.AllocOptions{Home: 0})
			os.Write(p, fd, seed, 8192) // populate the file
			var total sim.Time
			const reps = 10
			for i := 0; i < reps; i++ {
				os.Seek(p, fd, 0)
				t0 := p.Now()
				if shared {
					os.Read(p, fd, buf, 8192)
				} else {
					os.Read(p, fd, 0, 8192) // private buffer: no validation
				}
				total += p.Now() - t0
			}
			avg = sim.Microseconds(total) / reps
		})
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return avg
	}
	std := measure(true, false)
	base := measure(false, true)
	smp := measure(true, true)
	if !(std < base && base < smp) {
		t.Fatalf("read(8192) std=%.1f base=%.1f smp=%.1f want std<base<smp (Table 2)", std, base, smp)
	}
	if std < 30 || std > 90 {
		t.Fatalf("standard read(8192) = %.1fus, want ~51us", std)
	}
}

func TestJoinGroup(t *testing.T) {
	sys, os := newOS(t)
	var leaderPID int
	joined := false
	sys.Spawn("leader", 0, func(p *core.Proc) {
		st := os.Attach(p)
		leaderPID = st.PID
		for !joined {
			p.Compute(500)
		}
	})
	sys.Spawn("late", 1, func(p *core.Proc) {
		p.Compute(10000)
		st := os.Join(p, leaderPID)
		if st.PID == leaderPID {
			t.Error("joiner got leader's pid")
		}
		joined = true
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}
