package clusteros

import (
	"repro/internal/clusterfs"
	"repro/internal/core"
	"repro/internal/trace"
)

// The OS layer registers itself as core's OS factory so core.Build's WithOS
// option can construct it without core importing this package (the same
// inversion database/sql uses for drivers).
func init() {
	core.RegisterOSFactory(func(sys *core.System) any {
		return New(sys, clusterfs.New(sys.Cfg.Nodes))
	})
}

// Build constructs a Shasta system with the cluster OS layer attached and
// returns both. It is core.Build with WithOS applied and the result typed.
func Build(opts ...core.Option) (*core.System, *OS) {
	sys := core.Build(append(opts, core.WithOS())...)
	return sys, sys.OS().(*OS)
}

// emitSyscall traces one OS-level event for process p; a is call-specific
// (byte count, pid, ...).
func (os *OS) emitSyscall(p *core.Proc, name string, a int64) {
	if t := os.sys.Tracer(); t != nil {
		t.Emit(trace.Event{T: p.Now(), Cat: "os", Ev: "syscall", P: p.ID, S: name, A: a})
	}
}
