// Package clusteros extends operating-system services across the Shasta
// cluster (§4), making system calls work transparently as if all processes
// were on one machine:
//
//   - system call arguments referencing shared memory are validated through
//     the batch mechanism before the call is made (§4.1);
//   - process-management calls — fork, exit, wait, kill, getpid, pid_block,
//     pid_unblock — work across nodes with global process IDs (§4.2);
//   - shared-memory segments (shmget/shmat) are allocated from the global
//     shared region (§4.2);
//   - file system calls go to an NFS-style cluster file system (§4.2).
//
// Unlike cluster operating systems (Locus, Sprite, Solaris-MC), all of this
// is implemented by replacing system call routines in the application, not
// by modifying the kernel.
package clusteros

import (
	"fmt"

	"repro/internal/clusterfs"
	"repro/internal/core"
	"repro/internal/sim"
)

// Message tags for OS-level user messages.
const (
	tagChildExit = iota + 1
	tagSignal
	tagJoin
)

// OS is the cluster operating system layer for one Shasta system.
type OS struct {
	sys *core.System
	fs  *clusterfs.FS

	nextPID  int
	byPID    map[int]*PState
	byProc   map[int]*PState
	segments map[int]segment
	nextSeg  int

	// ForkCopyBytes is the amount of writable non-shared data (stack and
	// static areas) copied to a forked child (§4.2).
	ForkCopyBytes int
}

type segment struct {
	addr uint64
	size int
}

// PState is the per-process OS state.
type PState struct {
	PID      int
	Proc     *core.Proc
	Parent   int // parent PID, 0 for the initial process
	children map[int]bool
	// zombies are exited children not yet reaped by Wait.
	zombies []exitRecord
	blocked bool // in pid_block
	// unblockPending counts pid_unblocks that arrived while the process
	// was not blocked; the next pid_block consumes one instead of
	// sleeping (the kernel's semaphore-like semantics).
	unblockPending int
	signals        []int
	fds            map[int]*fd
	nextFD         int
	exited         bool
	status         int
}

type exitRecord struct {
	pid    int
	status int
}

type fd struct {
	path string
	off  int
}

// New creates the OS layer and installs its message handler.
func New(sys *core.System, fs *clusterfs.FS) *OS {
	os := &OS{
		sys:           sys,
		fs:            fs,
		nextPID:       100,
		byPID:         make(map[int]*PState),
		byProc:        make(map[int]*PState),
		segments:      make(map[int]segment),
		ForkCopyBytes: 256 << 10,
	}
	sys.SetUserHandler(os.handleMessage)
	return os
}

// FS returns the cluster file system.
func (os *OS) FS() *clusterfs.FS { return os.fs }

// Attach registers an already-spawned process with the OS, assigning a
// global PID. The initial processes of an application call this first.
func (os *OS) Attach(p *core.Proc) *PState {
	if st := os.byProc[p.ID]; st != nil {
		return st
	}
	os.nextPID++
	st := &PState{
		PID:      os.nextPID,
		Proc:     p,
		children: make(map[int]bool),
		fds:      make(map[int]*fd),
		nextFD:   3,
	}
	os.byPID[st.PID] = st
	os.byProc[p.ID] = st
	p.OSData = st
	return st
}

func (os *OS) state(p *core.Proc) *PState {
	st := os.byProc[p.ID]
	if st == nil {
		panic(fmt.Sprintf("clusteros: process %v never attached", p))
	}
	return st
}

// Getpid returns the global process ID (§4.2).
func (os *OS) Getpid(p *core.Proc) int {
	p.ChargeTime(core.CatTask, os.sys.Cfg.Cost.SyscallTrap)
	return os.state(p).PID
}

// Fork creates a copy of the calling process that runs body on the given
// CPU — possibly on another node (§4.2). The child gets a unique global
// PID; the parent's writable non-shared data (stack and static areas) is
// copied explicitly. The new process shares the Shasta shared region and
// protocol state. It returns the child's PID.
//
// As in the paper's implementation, the remote fork does not duplicate all
// process state (open file descriptors are not inherited).
func (os *OS) Fork(p *core.Proc, cpu int, body func(child *core.Proc)) int {
	parent := os.state(p)
	os.emitSyscall(p, "fork", int64(cpu))
	p.SyscallEnter()
	defer p.SyscallExit()
	p.Stats().N[core.CntForks]++
	cost := os.sys.Cfg.Cost.SyscallTrap +
		sim.Time(float64(os.ForkCopyBytes)*os.sys.Net.Config().IntraNodeCyclesPerByte)
	if os.sys.Eng.NodeOf(cpu) != p.Node() {
		// Copying the parent image to another node crosses the network.
		cost = os.sys.Cfg.Cost.SyscallTrap +
			sim.Time(float64(os.ForkCopyBytes)*os.sys.Net.Config().CyclesPerByte)
	}
	p.ChargeTime(core.CatTask, cost)

	os.nextPID++
	childPID := os.nextPID
	st := &PState{
		PID:      childPID,
		Parent:   parent.PID,
		children: make(map[int]bool),
		fds:      make(map[int]*fd),
		nextFD:   3,
	}
	os.byPID[childPID] = st
	child := os.sys.SpawnAt(fmt.Sprintf("pid%d", childPID), cpu, p.Now(), func(cp *core.Proc) {
		body(cp)
		os.exit(cp, 0)
	})
	st.Proc = child
	os.byProc[child.ID] = st
	child.OSData = st
	parent.children[childPID] = true
	return childPID
}

// Exit terminates the calling process with a status; information is sent
// to the parent so Wait works (§4.2). The process body should return right
// after calling Exit.
func (os *OS) Exit(p *core.Proc, status int) { os.exit(p, status) }

func (os *OS) exit(p *core.Proc, status int) {
	st := os.state(p)
	if st.exited {
		return
	}
	os.emitSyscall(p, "exit", int64(status))
	st.exited = true
	st.status = status
	if parent := os.byPID[st.Parent]; parent != nil && !parent.exited {
		p.SendUser(parent.Proc.ID, tagChildExit, exitRecord{pid: st.PID, status: status})
	}
}

// Wait blocks until a child exits and returns its PID and status (§4.2).
// It returns -1 if the process has no children outstanding.
func (os *OS) Wait(p *core.Proc) (pid, status int) {
	st := os.state(p)
	os.emitSyscall(p, "wait", 0)
	p.SyscallEnter()
	defer p.SyscallExit()
	p.ChargeTime(core.CatTask, os.sys.Cfg.Cost.SyscallTrap)
	if len(st.children) == 0 && len(st.zombies) == 0 {
		return -1, 0
	}
	for len(st.zombies) == 0 {
		os.blockInSyscall(p)
	}
	z := st.zombies[0]
	st.zombies = st.zombies[1:]
	delete(st.children, z.pid)
	return z.pid, z.status
}

// Kill sends a signal to another process anywhere on the cluster via a
// message (§4.2). Signals are delivered when the target checks with
// Sigpending or is woken from pid_block.
func (os *OS) Kill(p *core.Proc, pid, sig int) error {
	target := os.byPID[pid]
	if target == nil {
		return fmt.Errorf("clusteros: kill: no such pid %d", pid)
	}
	os.emitSyscall(p, "kill", int64(pid))
	p.ChargeTime(core.CatTask, os.sys.Cfg.Cost.SyscallTrap)
	p.SendUser(target.Proc.ID, tagSignal, sig)
	return nil
}

// Sigpending drains and returns pending signals for the calling process.
func (os *OS) Sigpending(p *core.Proc) []int {
	st := os.state(p)
	out := st.signals
	st.signals = nil
	return out
}

// PidBlock blocks the calling process until another process calls
// PidUnblock on it (§4.2); databases use this to wait for daemons.
func (os *OS) PidBlock(p *core.Proc) {
	st := os.state(p)
	os.emitSyscall(p, "pid_block", int64(st.PID))
	p.SyscallEnter()
	defer p.SyscallExit()
	p.ChargeTime(core.CatTask, os.sys.Cfg.Cost.SyscallTrap)
	if st.unblockPending > 0 {
		st.unblockPending--
		return
	}
	st.blocked = true
	for st.blocked {
		os.blockInSyscall(p)
	}
}

// PidUnblock wakes a process blocked in PidBlock (§4.2).
func (os *OS) PidUnblock(p *core.Proc, pid int) error {
	target := os.byPID[pid]
	if target == nil {
		return fmt.Errorf("clusteros: pid_unblock: no such pid %d", pid)
	}
	os.emitSyscall(p, "pid_unblock", int64(pid))
	p.ChargeTime(core.CatTask, os.sys.Cfg.Cost.SyscallTrap)
	wire := os.sys.Net.Deliver(p.Node(), target.Proc.Node(), 16, p.Now())
	if target.blocked {
		target.blocked = false
		target.Proc.Sim.NotifyAt(wire)
	} else {
		target.unblockPending++
	}
	return nil
}

// blockInSyscall parks the process in the kernel, releasing the CPU and
// accounting the time as blocked. While blocked, the process is outside
// application code, so direct downgrades may edit its state table (§4.3.4).
func (os *OS) blockInSyscall(p *core.Proc) {
	t0 := p.Now()
	p.Sim.Block()
	p.AccountWait(core.CatBlocked, p.Now()-t0)
}

// handleMessage applies an OS message to its target process's state (the
// servicing process may be any process on the target's CPU, or a protocol
// process, when the target is blocked — §4.3.2). The target is woken if it
// was waiting for the event.
func (os *OS) handleMessage(target *core.Proc, from int, tag int, payload any) {
	st := os.byProc[target.ID]
	if st == nil {
		return
	}
	switch tag {
	case tagChildExit:
		st.zombies = append(st.zombies, payload.(exitRecord))
		target.Sim.NotifyAt(target.Now())
	case tagSignal:
		st.signals = append(st.signals, payload.(int))
		target.Sim.NotifyAt(target.Now())
	case tagJoin:
		// A new process joined the group (§4.3.3); nothing to do beyond
		// the registration already performed by Join.
	}
}

// Join registers a late-starting process with an existing group, notifying
// the group leader via a signal-like message (§4.3.3) — how database server
// processes started by new clients join long-running daemons.
func (os *OS) Join(p *core.Proc, leaderPID int) *PState {
	st := os.Attach(p)
	if leader := os.byPID[leaderPID]; leader != nil {
		p.SendUser(leader.Proc.ID, tagJoin, st.PID)
	}
	return st
}

// Shmget creates a shared-memory segment of the given size in the global
// shared region and returns its ID (§4.2).
func (os *OS) Shmget(p *core.Proc, size int, opts core.AllocOptions) int {
	p.ChargeTime(core.CatTask, os.sys.Cfg.Cost.SyscallTrap)
	addr := os.sys.Alloc(size, opts)
	os.nextSeg++
	os.segments[os.nextSeg] = segment{addr: addr, size: size}
	return os.nextSeg
}

// Shmat attaches a segment and returns its address. Attaching at a caller-
// specified address is not supported, as in the paper (§4.2).
func (os *OS) Shmat(p *core.Proc, id int) (uint64, error) {
	p.ChargeTime(core.CatTask, os.sys.Cfg.Cost.SyscallTrap)
	seg, ok := os.segments[id]
	if !ok {
		return 0, fmt.Errorf("clusteros: shmat: no segment %d", id)
	}
	return seg.addr, nil
}

// SegSize returns the size of a segment.
func (os *OS) SegSize(id int) int { return os.segments[id].size }
