// Package conformance is the cross-protocol behavioral test suite: one
// table of requirements every registered coherence backend must satisfy,
// executed against each backend by name (core.ProtocolNames). The suite
// pins down the OBSERVABLE contract of the Protocol interface — what
// programs can see — while leaving each backend free in how it keeps
// copies coherent (invalidation multicast vs. timestamp leases):
//
//   - Exhaustive model checking: every non-broken catalogue model
//     converges with all invariants (including liveness) intact.
//   - Litmus outcomes: the mp/sb explorer models produce exactly the
//     golden outcome sets under SC and RC — the consistency model is a
//     property of the system, not of the backend. For unsynchronized
//     races the backends may differ only by outcome SUBSET (a backend
//     with bounded staleness reaches fewer interleavings, never new
//     ones).
//   - ISA litmus sweeps: the full rewriter + inline-check path keeps
//     forbidden outcomes unreachable on every backend.
//   - Runtime miss/upgrade/downgrade behavior: synchronized
//     producer/consumer programs observe released values; statistics
//     reflect a read miss, a write upgrade, and (SMP) a downgrade.
//   - Workload equivalence: every workload completes with the identical
//     final memory image on every backend, on both engines, with the
//     runtime invariants clean.
//   - Fault tolerance: under the chaos profiles, each backend's faulty
//     runs reproduce its own fault-free memory image.
package conformance

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Protocols returns the backends under test.
func Protocols() []string { return core.ProtocolNames() }

// testConfig is a small, fast configuration for direct protocol tests.
func testConfig(protocol string, smp bool) core.Config {
	cfg := core.DefaultConfig()
	cfg.SharedBytes = 256 << 10
	cfg.MaxTime = sim.Cycles(60e6)
	cfg.Protocol = protocol
	cfg.SMP = smp
	return cfg
}

// MissReport is what MissSequence observed: the values the phased
// readers saw and the relevant aggregate statistics.
type MissReport struct {
	FirstRead, FinalRead    uint64
	ReadMisses, WriteMisses int64
	Downgrades              int64 // explicit + direct (SMP only)
}

// MissSequence drives the canonical miss/upgrade/downgrade sequence on
// the named backend, with barrier synchronization between phases so the
// sequence is the same on every backend:
//
//	phase A: the home-node writer stores 1 (home starts exclusive)
//	phase B: the remote reader loads — a remote read miss
//	phase C: the remote reader stores 2 — a write miss/upgrade
//	phase D: the writer re-reads and must observe 2
//
// The writer runs on the home node's SECOND cpu: in SMP mode its
// private exclusive entry must then be demoted — an intra-node
// downgrade — before the home agent (on cpu 0) can serve the remote
// read in phase B.
func MissSequence(protocol string, smp bool) (*MissReport, error) {
	cfg := testConfig(protocol, smp)
	s := core.Build(core.WithConfig(cfg))
	bar := s.NewBarrier(0, 3)
	var addr uint64
	rep := &MissReport{}
	s.Spawn("peer", 0, func(p *core.Proc) {
		p.BarrierWait(bar)
		p.BarrierWait(bar)
		p.BarrierWait(bar)
	})
	s.Spawn("writer", 1, func(p *core.Proc) {
		p.Store(addr, 1)
		p.BarrierWait(bar) // A done
		p.BarrierWait(bar) // B done
		p.BarrierWait(bar) // C done
		rep.FinalRead = p.Load(addr)
	})
	s.Spawn("reader", cfg.CPUsPerNode, func(p *core.Proc) {
		p.BarrierWait(bar)
		r0 := p.Stats().ReadMisses()
		rep.FirstRead = p.Load(addr)
		rep.ReadMisses = p.Stats().ReadMisses() - r0
		p.BarrierWait(bar)
		w0 := p.Stats().WriteMisses()
		p.Store(addr, 2)
		p.MemBar()
		rep.WriteMisses = p.Stats().WriteMisses() - w0
		p.BarrierWait(bar)
	})
	addr = s.Alloc(64, core.AllocOptions{Home: 0})
	if err := s.Run(); err != nil {
		return nil, fmt.Errorf("%s smp=%v: %w", protocol, smp, err)
	}
	if err := s.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("%s smp=%v: %w", protocol, smp, err)
	}
	agg := s.AggregateStats()
	rep.Downgrades = agg.DowngradesSent() + agg.DowngradesDirect()
	return rep, nil
}

// ProducerConsumer runs the canonical synchronized visibility program on
// the named backend: the producer writes values and releases a lock; the
// consumer acquires the lock and must observe every write. Returns an
// error naming the first stale read. This is the cross-backend
// visibility contract: synchronization transfers writes, whatever the
// backend does with unsynchronized copies.
func ProducerConsumer(protocol string, smp bool, words int) error {
	cfg := testConfig(protocol, smp)
	s := core.Build(core.WithConfig(cfg))
	lk := s.NewLock(0)
	done := s.NewBarrier(0, 2)
	var addr uint64
	var stale error
	s.Spawn("prod", 0, func(p *core.Proc) {
		p.LockAcquire(lk)
		for i := 0; i < words; i++ {
			p.Store(addr+uint64(8*i), uint64(i+1))
		}
		p.LockRelease(lk)
		p.BarrierWait(done)
	})
	s.Spawn("cons", cfg.CPUsPerNode, func(p *core.Proc) {
		// Wait until the producer has published under the lock; lock
		// handoff must carry the writes (tardis: the release timestamp).
		for {
			p.LockAcquire(lk)
			v := p.Load(addr)
			p.LockRelease(lk)
			if v != 0 {
				break
			}
			p.Compute(500)
		}
		p.LockAcquire(lk)
		for i := 0; i < words; i++ {
			got := p.Load(addr + uint64(8*i))
			if got != uint64(i+1) && stale == nil {
				stale = fmt.Errorf("%s smp=%v: consumer read %d at word %d, want %d",
					protocol, smp, got, i, i+1)
			}
		}
		p.LockRelease(lk)
		p.BarrierWait(done)
	})
	addr = s.Alloc(words*8, core.AllocOptions{Home: 0})
	if err := s.Run(); err != nil {
		return fmt.Errorf("%s smp=%v: %w", protocol, smp, err)
	}
	if stale != nil {
		return stale
	}
	return s.CheckInvariants()
}
