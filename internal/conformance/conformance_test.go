package conformance

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/modelcheck"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestRegistry pins the backend registry: both protocols of the paper
// reproduction must be present (a third backend would extend, not break,
// the suite — every other test here ranges over Protocols()).
func TestRegistry(t *testing.T) {
	names := Protocols()
	for _, want := range []string{"dirinval", "tardis"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("protocol %q not registered (have %v)", want, names)
		}
	}
}

// TestModelConvergence exhaustively explores every non-broken catalogue
// model under both consistency models on every backend: the sweep must
// converge with every invariant — including bounded liveness — intact.
func TestModelConvergence(t *testing.T) {
	for _, m := range modelcheck.Models() {
		if m.Cfg.Broken {
			continue
		}
		if testing.Short() && m.Name == "3p1b" {
			continue // the largest sweep; covered by the full tier
		}
		for _, c := range []core.ConsistencyModel{core.ReleaseConsistent, core.SequentiallyConsistent} {
			for _, proto := range Protocols() {
				res := modelcheck.Check(m.WithConsistency(c).WithProtocol(proto),
					modelcheck.Options{Liveness: true})
				if res.Violation != nil {
					t.Errorf("%s/%s/%s: violation of %s: %s\npath:\n  %s",
						m.Name, c, proto, res.Violation.Invariant, res.Violation.Detail,
						strings.Join(res.Violation.Path, "\n  "))
					continue
				}
				if !res.Converged {
					t.Errorf("%s/%s/%s: exploration did not converge (%d states)",
						m.Name, c, proto, res.States)
				}
			}
		}
	}
}

// TestExplorerLitmusGoldens checks the mp and sb explorer models against
// the golden outcome sets on every backend. These sets are a property of
// the consistency model, so they are identical across backends: under SC
// the forbidden outcome of each test is unreachable, under RC it is
// reachable.
func TestExplorerLitmusGoldens(t *testing.T) {
	goldens := []struct {
		model string
		cons  core.ConsistencyModel
		want  []string
	}{
		{"mp", core.SequentiallyConsistent,
			[]string{"p0:[];p1:[0 0]", "p0:[];p1:[0 1]", "p0:[];p1:[1 1]"}},
		{"mp", core.ReleaseConsistent,
			[]string{"p0:[];p1:[0 0]", "p0:[];p1:[0 1]", "p0:[];p1:[1 0]", "p0:[];p1:[1 1]"}},
		{"sb", core.SequentiallyConsistent,
			[]string{"p0:[0];p1:[1]", "p0:[1];p1:[0]", "p0:[1];p1:[1]"}},
		{"sb", core.ReleaseConsistent,
			[]string{"p0:[0];p1:[0]", "p0:[0];p1:[1]", "p0:[1];p1:[0]", "p0:[1];p1:[1]"}},
	}
	for _, g := range goldens {
		m, err := modelcheck.ModelByName(g.model)
		if err != nil {
			t.Fatal(err)
		}
		for _, proto := range Protocols() {
			res := modelcheck.Check(m.WithConsistency(g.cons).WithProtocol(proto),
				modelcheck.Options{})
			if res.Violation != nil {
				t.Errorf("%s/%s/%s: violation of %s: %s",
					g.model, g.cons, proto, res.Violation.Invariant, res.Violation.Detail)
				continue
			}
			if !reflect.DeepEqual(res.Outcomes, g.want) {
				t.Errorf("%s/%s/%s: outcomes %v, want %v",
					g.model, g.cons, proto, res.Outcomes, g.want)
			}
		}
	}
}

// TestOutcomeSubset checks the cross-backend outcome relation on every
// catalogue model: a backend may reach FEWER final outcomes than the
// directory baseline (tardis's leased copies make an unsynchronized
// reader's view sticky), but never new ones — a novel outcome would be a
// serialization the invalidation protocol forbids.
func TestOutcomeSubset(t *testing.T) {
	for _, m := range modelcheck.Models() {
		if m.Cfg.Broken {
			continue
		}
		if testing.Short() && m.Name == "3p1b" {
			continue
		}
		for _, c := range []core.ConsistencyModel{core.ReleaseConsistent, core.SequentiallyConsistent} {
			base := modelcheck.Check(m.WithConsistency(c).WithProtocol("dirinval"),
				modelcheck.Options{})
			if base.Violation != nil {
				t.Fatalf("%s/%s/dirinval: %s: %s", m.Name, c,
					base.Violation.Invariant, base.Violation.Detail)
			}
			allowed := make(map[string]bool, len(base.Outcomes))
			for _, o := range base.Outcomes {
				allowed[o] = true
			}
			for _, proto := range Protocols() {
				if proto == "dirinval" {
					continue
				}
				res := modelcheck.Check(m.WithConsistency(c).WithProtocol(proto),
					modelcheck.Options{})
				if res.Violation != nil {
					t.Errorf("%s/%s/%s: %s: %s", m.Name, c, proto,
						res.Violation.Invariant, res.Violation.Detail)
					continue
				}
				for _, o := range res.Outcomes {
					if !allowed[o] {
						t.Errorf("%s/%s/%s: outcome %q unreachable under dirinval",
							m.Name, c, proto, o)
					}
				}
			}
		}
	}
}

// TestISALitmus sweeps the rewriter-instrumented litmus kernels on every
// backend: observed outcome sets must stay inside the consistency
// model's allowed table, and the SC-forbidden outcomes must never
// appear. (Exact observed sets are pinned per-backend only for the
// directory baseline, in workloads' own litmus tests: which allowed
// outcomes a sweep reaches depends on the backend's timing windows.)
func TestISALitmus(t *testing.T) {
	allowed := map[string]map[string][]string{
		"mp": {
			"SC": {"ry=0 rx=0", "ry=0 rx=1", "ry=1 rx=1"},
			"RC": {"ry=0 rx=0", "ry=0 rx=1", "ry=1 rx=0", "ry=1 rx=1"},
		},
		"sb": {
			"SC": {"ry=0 rx=1", "ry=1 rx=0", "ry=1 rx=1"},
			"RC": {"ry=0 rx=0", "ry=0 rx=1", "ry=1 rx=0", "ry=1 rx=1"},
		},
	}
	for _, kernel := range []string{"mp", "sb"} {
		if testing.Short() && kernel != "mp" {
			continue
		}
		k, err := workloads.LitmusKernelByName(kernel)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []core.ConsistencyModel{core.ReleaseConsistent, core.SequentiallyConsistent} {
			table := allowed[kernel][c.String()]
			ok := make(map[string]bool, len(table))
			for _, o := range table {
				ok[o] = true
			}
			for _, proto := range Protocols() {
				got, err := workloads.LitmusSweepOn(k, c, proto)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", kernel, c, proto, err)
				}
				for _, o := range got {
					if !ok[o] {
						t.Errorf("%s/%s/%s: forbidden outcome %q observed (allowed %v)",
							kernel, c, proto, o, table)
					}
				}
			}
		}
	}
}

// TestProducerConsumer checks synchronized visibility: a consumer that
// acquires the producer's lock observes every released write, on every
// backend and both protocol variants.
func TestProducerConsumer(t *testing.T) {
	for _, proto := range Protocols() {
		for _, smp := range []bool{true, false} {
			if err := ProducerConsumer(proto, smp, 16); err != nil {
				t.Error(err)
			}
		}
	}
}

// TestMissSequence drives the canonical miss/upgrade/downgrade sequence
// on every backend and checks both the observed values and that the
// statistics reflect the expected protocol activity.
func TestMissSequence(t *testing.T) {
	for _, proto := range Protocols() {
		for _, smp := range []bool{true, false} {
			rep, err := MissSequence(proto, smp)
			if err != nil {
				t.Error(err)
				continue
			}
			tag := fmt.Sprintf("%s smp=%v", proto, smp)
			if rep.FirstRead != 1 {
				t.Errorf("%s: remote reader saw %d after release, want 1", tag, rep.FirstRead)
			}
			if rep.FinalRead != 2 {
				t.Errorf("%s: writer re-read %d after handoff, want 2", tag, rep.FinalRead)
			}
			if rep.ReadMisses == 0 {
				t.Errorf("%s: remote read took no read miss", tag)
			}
			if rep.WriteMisses == 0 {
				t.Errorf("%s: remote store took no write miss", tag)
			}
			if smp && rep.Downgrades == 0 {
				t.Errorf("%s: no intra-node downgrade recorded", tag)
			}
		}
	}
}

// TestWorkloadMemoryEquivalence runs real workloads on every backend and
// requires the identical final shared-memory image: for synchronized
// programs the coherence backend must be invisible in the result.
func TestWorkloadMemoryEquivalence(t *testing.T) {
	cases := []struct {
		app   string
		procs int
		sync  workloads.SyncStyle
	}{
		{"LU", 8, workloads.MPSync},
		{"Water-Nsq", 8, workloads.SMSync},
	}
	for _, tc := range cases {
		if testing.Short() && tc.app != "LU" {
			continue
		}
		app, okApp := workloads.Get(tc.app)
		if !okApp {
			t.Fatalf("unknown workload %q", tc.app)
		}
		var ref []uint64
		for _, proto := range Protocols() {
			cfg := core.DefaultConfig()
			cfg.SharedBytes = 4 << 20
			cfg.MaxTime = sim.Cycles(900e6)
			cfg.Protocol = proto
			s := core.Build(core.WithConfig(cfg))
			if _, err := workloads.Run(s, app, workloads.RunConfig{
				Procs: tc.procs, Scale: 1, Sync: tc.sync,
			}); err != nil {
				t.Fatalf("%s/%s: %v", tc.app, proto, err)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Errorf("%s/%s: %v", tc.app, proto, err)
			}
			snap := s.SnapshotShared()
			if ref == nil {
				ref = snap
				continue
			}
			if len(snap) != len(ref) {
				t.Errorf("%s/%s: snapshot length %d vs %d", tc.app, proto, len(snap), len(ref))
				continue
			}
			for i := range snap {
				if snap[i] != ref[i] {
					t.Errorf("%s/%s: final memory word %d differs: %#x vs %#x",
						tc.app, proto, i, snap[i], ref[i])
					break
				}
			}
		}
	}
}

// TestCrossEngineDeterminism runs one workload per backend on both PDES
// engines: the parallel conservative engine must reproduce the
// sequential engine's run exactly — trace digest, memory, statistics,
// and simulated time — on every backend.
func TestCrossEngineDeterminism(t *testing.T) {
	for _, proto := range Protocols() {
		cfg := core.DefaultConfig()
		cfg.SharedBytes = 4 << 20
		cfg.MaxTime = sim.Cycles(900e6)
		cfg.Protocol = proto
		seq, err := experiments.RunWorkloadOnEngine("LU", 8, 1, cfg, -1)
		if err != nil {
			t.Fatalf("%s/seq: %v", proto, err)
		}
		par, err := experiments.RunWorkloadOnEngine("LU", 8, 1, cfg, 4)
		if err != nil {
			t.Fatalf("%s/parallel: %v", proto, err)
		}
		if d := seq.Diff(par); d != "" {
			t.Errorf("%s: engines disagree: %s", proto, d)
		}
	}
}

// TestChaosCrossProtocol is the cross-protocol chaos matrix: each
// backend × each fault profile × three seeds, with the faulty run's
// final memory compared against the same backend's fault-free image.
// The reliability sublayer is below the coherence layer, so every
// backend must mask the same faults.
func TestChaosCrossProtocol(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, proto := range Protocols() {
		base, err := experiments.NewChaosBaselineOn(proto, "LU", 8, 1)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		for _, profile := range experiments.ChaosProfiles() {
			for _, seed := range seeds {
				out, err := base.Run(profile, seed)
				if err != nil {
					t.Errorf("%s/%s/seed=%d: %v", proto, profile, seed, err)
					continue
				}
				if !out.Completed {
					t.Errorf("%s/%s/seed=%d: run did not complete", proto, profile, seed)
					continue
				}
				if !out.MemEqual {
					t.Errorf("%s/%s/seed=%d: final memory diverged from the fault-free run",
						proto, profile, seed)
				}
			}
		}
	}
}
