// Package repro's root benchmarks regenerate each table and figure of the
// Shasta paper's evaluation as testing.B benchmarks: one bench per table or
// figure, reporting the headline simulated quantities as custom metrics.
//
// Run them all:
//
//	go test -bench=. -benchmem
package repro

import (
	"testing"

	"repro/internal/clusterfs"
	"repro/internal/clusteros"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/oracledb"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// BenchmarkTable1LockLatency regenerates Table 1 (MP vs SM lock acquire
// latencies) once per iteration.
func BenchmarkTable1LockLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiments.Table1()
		if len(tab.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkMemoryBarrier regenerates the §6.2 memory-barrier costs.
func BenchmarkMemoryBarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.MemoryBarrierCosts()
	}
}

// BenchmarkTable2Syscalls regenerates Table 2 (system call validation).
func BenchmarkTable2Syscalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2()
	}
}

// BenchmarkTable3Overheads regenerates Table 3 (sequential checking
// overheads) for the SPLASH-2 kernels (the Oracle rows run in
// BenchmarkTable4OracleDSS).
func BenchmarkTable3Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, app := range workloads.All() {
			cfg := core.DefaultConfig()
			cfg.MaxTime = sim.Cycles(900e6)
			if _, err := workloads.Run(core.Build(core.WithConfig(cfg)), app, workloads.RunConfig{Procs: 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure3Speedups regenerates one Figure 3 series (Barnes, both
// synchronization styles, 1-16 processors). The full nine-application
// figure is produced by `shasta-bench -run figure3`.
func BenchmarkFigure3Speedups(b *testing.B) {
	counts := []int{1, 2, 4, 8, 16}
	for i := 0; i < b.N; i++ {
		for _, sync := range []workloads.SyncStyle{workloads.MPSync, workloads.SMSync} {
			sp, err := experiments.SpeedupSeries("Barnes", sync, counts)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 && sync == workloads.MPSync {
				b.ReportMetric(sp[len(sp)-1], "speedup@16p")
			}
		}
	}
}

// BenchmarkFigure4Consistency regenerates one Figure 4 comparison (RC vs
// SC at 16 processors, Base-Shasta) for a representative application.
func BenchmarkFigure4Consistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, model := range []core.ConsistencyModel{core.ReleaseConsistent, core.SequentiallyConsistent} {
			cfg := core.DefaultConfig()
			cfg.SMP = false
			cfg.Consistency = model
			cfg.MaxTime = sim.Cycles(900e6)
			app, _ := workloads.Get("Water-Sp")
			if _, err := workloads.Run(core.Build(core.WithConfig(cfg)), app, workloads.RunConfig{Procs: 16}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable4OracleDSS regenerates one Table 4 cell (Shasta EX, two
// servers) per iteration; `shasta-bench -run table4,figure5` produces the
// full table and the Figure 5 breakdowns.
func BenchmarkTable4OracleDSS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.ProtocolProcs = true
		cfg.MaxTime = sim.Cycles(900e6)
		sys := core.Build(core.WithConfig(cfg))
		osl := clusteros.New(sys, clusterfs.New(cfg.Nodes))
		res, err := oracledb.Run(sys, osl, oracledb.DSS1(2, []int{1, 4}, 0))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(sim.Microseconds(res.Elapsed)/1000, "simulated-ms")
		}
	}
}

// BenchmarkProtocolRemoteMiss measures the simulator's throughput on the
// fundamental operation: a 2-hop 64-byte remote miss.
func BenchmarkProtocolRemoteMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.SharedBytes = 256 << 10
		cfg.MaxTime = sim.Cycles(600e6)
		s := core.Build(core.WithConfig(cfg))
		var addr uint64
		ready := false
		s.Spawn("home", 0, func(p *core.Proc) {
			addr = s.Alloc(64<<10, core.AllocOptions{Home: 0})
			for k := 0; k < 1024; k++ {
				p.Store(addr+uint64(k*64), uint64(k))
			}
			p.MemBar()
			ready = true
			for !s.Proc(1).Exited() {
				p.Compute(1000)
			}
		})
		s.Spawn("reader", cfg.CPUsPerNode, func(p *core.Proc) {
			for !ready {
				p.Compute(500)
			}
			for k := 0; k < 1024; k++ {
				p.Load(addr + uint64(k*64))
			}
		})
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
