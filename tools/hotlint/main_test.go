package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDir returns the absolute path of the fixture package.
func fixtureDir(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// analyzeFixture runs the static analysis over the fixture package.
func analyzeFixture(t *testing.T) (*analyzer, []*funcInfo, []finding) {
	t.Helper()
	dir := fixtureDir(t)
	root, mod := findModule(dir)
	if root == "" || mod == "" {
		t.Fatalf("no module found above %s", dir)
	}
	a := newAnalyzer(root, mod)
	if err := a.load(dir); err != nil {
		t.Fatalf("load: %v", err)
	}
	hot := a.hotClosure()
	var findings []finding
	for _, fi := range hot {
		findings = append(findings, a.lintFunc(fi)...)
	}
	sortFindings(findings)
	return a, hot, findings
}

func countBy(findings []finding, f func(finding) string) map[string]int {
	out := map[string]int{}
	for _, fd := range findings {
		out[f(fd)]++
	}
	return out
}

func TestHotClosure(t *testing.T) {
	_, hot, _ := analyzeFixture(t)
	got := map[string]bool{}
	for _, fi := range hot {
		got[fi.short] = true
	}
	for _, want := range []string{"Root", "Allowed", "StackProven", "Escaping", "suffix", "box", "sinkBig", "callee"} {
		if !got[want] {
			t.Errorf("hot closure is missing %s (have %v)", want, got)
		}
	}
	for _, never := range []string{"coldCallee", "NotHot"} {
		if got[never] {
			t.Errorf("hot closure wrongly contains %s", never)
		}
	}
}

func TestFindingKinds(t *testing.T) {
	_, _, findings := analyzeFixture(t)
	kinds := countBy(findings, func(f finding) string { return f.kind })
	want := map[string]int{
		"make":          3, // Root, callee, StackProven (Allowed suppressed, coldCallee cold, NotHot unreachable)
		"new":           1,
		"append-growth": 1,
		"composite":     3, // &big{} in Root, []int literal in Root, &big{} in Escaping
		"string-concat": 1, // the panic argument concat must be skipped
		"string-conv":   1,
		"iface-arg":     1,
		"iface-call":    1,
		"closure":       1,
		"map-write":     2, // assignment + increment
		"big-copy":      1,
	}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("kind %s: got %d findings, want %d", k, kinds[k], n)
		}
	}
	if kinds["escape"] != 0 {
		t.Errorf("static pass must not produce escape findings, got %d", kinds["escape"])
	}
}

func TestAttributionAndSuppression(t *testing.T) {
	_, _, findings := analyzeFixture(t)
	byFn := countBy(findings, func(f finding) string { return f.fn })
	if byFn["Allowed"] != 0 {
		t.Errorf("hotlint:allow failed: %d finding(s) in Allowed", byFn["Allowed"])
	}
	if byFn["coldCallee"] != 0 || byFn["NotHot"] != 0 {
		t.Errorf("cold/unreachable functions reported: coldCallee=%d NotHot=%d",
			byFn["coldCallee"], byFn["NotHot"])
	}
	if byFn["callee"] != 1 {
		t.Errorf("closure walk: callee should carry exactly its own make finding, got %d", byFn["callee"])
	}
}

func TestBaselineGate(t *testing.T) {
	a, _, findings := analyzeFixture(t)
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.key(a.modRoot)]++
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := writeBaseline(path, counts); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := newAgainstBaseline(findings, base, a.modRoot); len(n) != 0 {
		t.Errorf("full baseline should suppress everything, got %d new", len(n))
	}
	// Remove one key: all its instances become new again.
	var victim string
	for k := range base.Findings {
		if victim == "" || k < victim {
			victim = k
		}
	}
	removed := base.Findings[victim]
	delete(base.Findings, victim)
	n := newAgainstBaseline(findings, base, a.modRoot)
	if len(n) != removed {
		t.Errorf("removing key %q (count %d) should yield %d new findings, got %d",
			victim, removed, removed, len(n))
	}
	// Keys must be line-free so reformatting does not invalidate them.
	for k := range base.Findings {
		parts := strings.Split(k, ":")
		if len(parts) < 4 {
			t.Errorf("baseline key %q does not have file:func:kind:detail shape", k)
		}
	}
}

// TestEscapeCrossCheck shells out to the Go compiler; it is the fixture
// for the -escape agreement contract, including a deliberate
// disagreement in each direction.
func TestEscapeCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping go build -gcflags=-m")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	a, hot, findings := analyzeFixture(t)
	verdicts, err := runEscapeAnalysis(a.modRoot, []string{fixtureDir(t)})
	if err != nil {
		t.Fatalf("escape analysis: %v", err)
	}
	if len(verdicts) == 0 {
		t.Fatal("no escape diagnostics parsed")
	}
	checked, suppressed := a.crossCheck(findings, hot, verdicts)
	if suppressed == 0 {
		t.Error("expected at least one compiler-proven stack finding (StackProven's make) to be suppressed")
	}
	byFn := map[string][]finding{}
	for _, f := range checked {
		byFn[f.fn] = append(byFn[f.fn], f)
	}
	// Direction 1: the shape rule fired, the compiler disagrees (does not
	// escape) — the make in StackProven must be gone.
	for _, f := range byFn["StackProven"] {
		if f.kind == "make" {
			t.Errorf("StackProven's non-escaping make survived the cross-check")
		}
	}
	// Direction 2: the compiler sees an escape the shape rules cannot
	// (moved to heap: x) — surfaced as an "escape" finding.
	foundEscape := false
	for _, f := range byFn["StackProven"] {
		if f.kind == "escape" && strings.Contains(f.msg, "moved to heap") {
			foundEscape = true
		}
	}
	if !foundEscape {
		t.Errorf("moved-to-heap local in StackProven not surfaced as an escape finding; got %v", byFn["StackProven"])
	}
	// Agreement: Escaping's composite literal is compiler-confirmed and
	// must survive.
	foundComposite := false
	for _, f := range byFn["Escaping"] {
		if f.kind == "composite" {
			foundComposite = true
		}
	}
	if !foundComposite {
		t.Errorf("Escaping's heap-confirmed composite was wrongly suppressed; got %v", byFn["Escaping"])
	}
}

// TestRunEndToEnd drives the run() entry point the way CI does.
func TestRunEndToEnd(t *testing.T) {
	dir := fixtureDir(t)
	path := filepath.Join(t.TempDir(), "baseline.json")
	var buf bytes.Buffer
	// Without a baseline: findings fail.
	if code := run([]string{dir}, false, "", false, &buf); code != 1 {
		t.Fatalf("run without baseline: got exit %d, want 1\n%s", code, buf.String())
	}
	// Write a baseline, then the same findings pass.
	buf.Reset()
	if code := run([]string{dir}, false, path, true, &buf); code != 0 {
		t.Fatalf("write-baseline: got exit %d\n%s", code, buf.String())
	}
	buf.Reset()
	if code := run([]string{dir}, false, path, false, &buf); code != 0 {
		t.Fatalf("run with full baseline: got exit %d, want 0\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "0 new") {
		t.Errorf("baseline run should report 0 new findings:\n%s", buf.String())
	}
}
