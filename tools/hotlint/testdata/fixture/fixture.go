// Package fixture exercises every hotlint finding kind, the directive
// grammar, and the escape cross-check. It is linted (and built with
// -gcflags=-m) by the hotlint tests; it is NOT part of the regular build
// because testdata directories are excluded from ./... patterns.
package fixture

// big is 128 bytes: above the pass-by-value threshold.
type big struct{ a [16]int64 }

// handler is dispatched through an interface in Root.
type handler interface{ Handle(x *int) }

// Root is a hot-path root exercising one instance of each finding kind.
//
//hot:path
func Root(h handler, m map[int]int, s []int, b big) int {
	n := make([]int, 4)             // make
	p := new(int)                   // new
	s = append(s, 1)                // append-growth
	q := &big{}                     // composite (&T{...})
	lit := []int{1, 2}              // composite (slice literal)
	name := "a" + suffix()          // string-concat
	bs := []byte(name)              // string-conv
	box(n[0])                       // iface-arg
	h.Handle(p)                     // iface-call
	f := func() int { return n[0] } // closure
	m[1] = 2                        // map-write
	m[2]++                          // map-write
	sinkBig(b)                      // big-copy
	callee()                        // pulled into the hot closure
	coldCallee()                    // NOT pulled: //hot:cold
	if len(lit) == 0 || len(bs) == 0 || q.a[0] != 0 {
		panic("fixture: " + name) // panic arguments are skipped
	}
	return *p + f() + int(s[0])
}

// suffix is hot via the closure walk but contains no findings.
func suffix() string { return "b" }

// box boxes its argument at the caller.
func box(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

// sinkBig receives a 128-byte struct by value.
func sinkBig(b big) int64 { return b.a[0] }

// callee is pulled into the hot closure by Root; its finding is
// attributed to callee, not Root.
func callee() []int {
	return make([]int, 1)
}

// coldCallee is called from hot code but explicitly cold: its make is
// never reported.
//
//hot:cold
func coldCallee() []int {
	return make([]int, 2)
}

// Allowed demonstrates the suppression comment.
//
//hot:path
func Allowed() []int {
	return make([]int, 3) // hotlint:allow(make): fixture — documented cold fill path
}

// NotHot is unreachable from any root and is never reported.
func NotHot() []int { return make([]int, 9) }

// StackProven contains a make the compiler proves non-escaping (dropped
// by -escape) and a moved-to-heap local the shape rules cannot see
// (surfaced by -escape as an "escape" finding).
//
//hot:path
func StackProven() *int {
	x := 5
	s := make([]int, 4)
	x += s[0]
	return &x
}

// Escaping contains a composite literal the compiler confirms escapes:
// the finding survives the -escape cross-check.
//
//hot:path
func Escaping() *big {
	return &big{}
}
