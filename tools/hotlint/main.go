// Command hotlint is the repository's hot-path allocation linter. The
// simulator's message/miss path runs millions of times per benchmark run;
// a single heap allocation per event dominates the host-side profile long
// before any simulated cost does. hotlint makes the zero-allocation
// discipline on those paths checkable:
//
//   - a `//hot:path` directive line in a function's doc comment roots an
//     intra-module call-closure walk: the function and everything it
//     (transitively) calls inside the analyzed directories is hot;
//   - a `//hot:cold` directive cuts the walk: the marked function is
//     never entered even when called from hot code (panic formatting,
//     error paths, one-time setup);
//   - within hot code, every allocation-shaped construct is reported:
//     make/new, address-taken or reference-typed composite literals,
//     append growth, non-constant string concatenation and string<->[]byte
//     conversions, boxing a concrete value into an interface parameter,
//     calls through interface values (whose arguments escape), closures,
//     map writes, and pass-by-value copies of 100+ byte values.
//
// Arguments to panic() are skipped — a panicking path is cold by
// definition. A `hotlint:allow(kind,...)` comment suppresses the named
// kinds on its own line and the next; each use should say why the
// construct is safe (pool cold paths, bounded tables).
//
// Findings are compared against a committed baseline (-baseline) keyed
// without line numbers, so the tool fails CI only on NEW findings while
// the recorded debt is paid down incrementally. -write-baseline records
// the current findings.
//
// With -escape, hotlint additionally shells out to `go build
// -gcflags=-m` and cross-checks its static verdicts against the
// compiler's escape analysis: findings the compiler proves non-escaping
// ("does not escape") are suppressed, and compiler-reported escapes
// inside hot functions that the shape rules missed are surfaced as
// findings of kind "escape".
//
// Like detlint, hotlint uses only the standard library: module-internal
// imports are resolved by type-checking their directories recursively,
// everything else through go/importer's source importer. Test files are
// skipped. New findings make the exit status 1; usage or analysis errors
// make it 2.
//
// Usage: hotlint [-escape] [-baseline file] [-write-baseline] DIR...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// bigCopyBytes is the pass-by-value size threshold: copying this many
// bytes per call is treated as allocation-shaped work on a hot path.
const bigCopyBytes = 100

type finding struct {
	pos    token.Position
	fn     string // containing hot function, short form (Recv.Name)
	kind   string
	detail string // short, line-free description used in baseline keys
	msg    string
}

// key is the line-free baseline identity of a finding: moving code around
// must not invalidate the baseline, adding a new construct must.
func (f finding) key(modRoot string) string {
	file := f.pos.Filename
	if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return file + ":" + f.fn + ":" + f.kind + ":" + f.detail
}

// pkgInfo is one analyzed directory with its type-check results.
type pkgInfo struct {
	dir   string
	path  string
	files []*ast.File
	info  *types.Info
}

// funcInfo is one function declaration found in the analyzed set.
type funcInfo struct {
	pkg      *pkgInfo
	decl     *ast.FuncDecl
	fullName string // types.Func.FullName — stable across re-checks
	short    string // Recv.Name or Name
	hot      bool   // //hot:path directive
	cold     bool   // //hot:cold directive
}

type analyzer struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	cache   map[string]*types.Package
	std     types.Importer
	sizes   types.Sizes
	pkgs    []*pkgInfo
	decls   map[string]*funcInfo // keyed by fullName
}

func newAnalyzer(modRoot, modPath string) *analyzer {
	fset := token.NewFileSet()
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = &types.StdSizes{WordSize: 8, MaxAlign: 8}
	}
	return &analyzer{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		cache:   map[string]*types.Package{},
		std:     importer.ForCompiler(fset, "source", nil),
		sizes:   sizes,
		decls:   map[string]*funcInfo{},
	}
}

// Import implements types.Importer over the same hybrid resolution scheme
// as detlint: module-internal packages by recursive directory check,
// everything else through the source importer.
func (a *analyzer) Import(path string) (*types.Package, error) {
	if pkg, ok := a.cache[path]; ok {
		return pkg, nil
	}
	if a.modPath != "" && (path == a.modPath || strings.HasPrefix(path, a.modPath+"/")) {
		dir := filepath.Join(a.modRoot, strings.TrimPrefix(strings.TrimPrefix(path, a.modPath), "/"))
		pkg, _, err := a.check(dir, path, nil)
		if err != nil {
			return nil, err
		}
		a.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := a.std.Import(path)
	if err != nil {
		return nil, err
	}
	a.cache[path] = pkg
	return pkg, nil
}

// check parses and type-checks one package directory, skipping tests.
func (a *analyzer) check(dir, path string, info *types.Info) (*types.Package, []*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(a.fset, filepath.Join(dir, fn), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if f.Name.Name == "main" && path != "main" {
			path = "main"
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{
		Importer: a,
		Error:    func(error) {}, // best-effort: keep partial type info
	}
	pkg, err := conf.Check(path, a.fset, files, info)
	if err != nil && pkg == nil {
		return nil, nil, err
	}
	return pkg, files, nil
}

// load type-checks one target directory with full info and indexes its
// function declarations (and directives) into the analyzer.
func (a *analyzer) load(dir string) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	importPath := dir
	if a.modPath != "" {
		if rel, err := filepath.Rel(a.modRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
			importPath = a.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	_, files, err := a.check(dir, importPath, info)
	if err != nil {
		return err
	}
	p := &pkgInfo{dir: dir, path: importPath, files: files, info: info}
	a.pkgs = append(a.pkgs, p)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{
				pkg:      p,
				decl:     fd,
				fullName: obj.FullName(),
				short:    shortName(fd),
				hot:      hasDirective(fd.Doc, "//hot:path"),
				cold:     hasDirective(fd.Doc, "//hot:cold"),
			}
			a.decls[fi.fullName] = fi
		}
	}
	return nil
}

func shortName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func hasDirective(doc *ast.CommentGroup, dir string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == dir {
			return true
		}
	}
	return false
}

// hotClosure computes the set of hot functions: every //hot:path root
// plus everything transitively called from one inside the analyzed set,
// stopping at //hot:cold marks. Returns the hot funcInfos in a stable
// order (file, then position).
func (a *analyzer) hotClosure() []*funcInfo {
	names := make([]string, 0, len(a.decls))
	for name := range a.decls {
		names = append(names, name)
	}
	sort.Strings(names)
	var work []*funcInfo
	seen := map[string]bool{}
	for _, name := range names {
		if fi := a.decls[name]; fi.hot {
			work = append(work, fi)
			seen[fi.fullName] = true
		}
	}
	var hot []*funcInfo
	for len(work) > 0 {
		fi := work[len(work)-1]
		work = work[:len(work)-1]
		hot = append(hot, fi)
		for _, callee := range a.callees(fi) {
			c := a.decls[callee]
			if c == nil || c.cold || seen[c.fullName] {
				continue
			}
			seen[c.fullName] = true
			work = append(work, c)
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		pi, pj := a.fset.Position(hot[i].decl.Pos()), a.fset.Position(hot[j].decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return hot
}

// callees returns the full names of statically resolvable calls in fi's
// body. Calls through interface values resolve to interface methods,
// which have no declaration in the analyzed set and terminate the walk
// there (and are flagged separately as iface-call findings).
func (a *analyzer) callees(fi *funcInfo) []string {
	info := fi.pkg.info
	var out []string
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPanic(info, call) {
			return false // panic arguments are cold by definition
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if f, ok := info.Uses[fun].(*types.Func); ok {
				out = append(out, f.FullName())
			}
		case *ast.SelectorExpr:
			if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
				out = append(out, f.FullName())
			}
		}
		return true
	})
	return out
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, builtin := info.Uses[id].(*types.Builtin)
	return builtin || info.Uses[id] == nil
}

var allowRe = regexp.MustCompile(`hotlint:allow\(([^)]*)\)`)

// allowedKinds maps line -> set of suppressed kinds ("*" = all) for one
// file: a hotlint:allow comment covers its own line and the next.
func allowedKinds(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	out := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			kinds := map[string]bool{}
			for _, k := range strings.Split(m[1], ",") {
				k = strings.TrimSpace(k)
				if k != "" {
					kinds[k] = true
				}
			}
			if len(kinds) == 0 {
				kinds["*"] = true
			}
			line := fset.Position(c.Pos()).Line
			for _, ln := range []int{line, line + 1} {
				if out[ln] == nil {
					out[ln] = map[string]bool{}
				}
				for k := range kinds {
					out[ln][k] = true
				}
			}
		}
	}
	return out
}

// typeStr renders a type without package qualification, for stable and
// readable finding details.
func typeStr(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// lintFunc reports the allocation-shaped constructs in one hot function.
func (a *analyzer) lintFunc(fi *funcInfo) []finding {
	info := fi.pkg.info
	file := fileOf(fi)
	allow := allowedKinds(a.fset, file)
	var out []finding
	add := func(n ast.Node, kind, detail, format string, args ...any) {
		pos := a.fset.Position(n.Pos())
		if ak := allow[pos.Line]; ak != nil && (ak[kind] || ak["*"]) {
			return
		}
		out = append(out, finding{
			pos: pos, fn: fi.short, kind: kind, detail: detail,
			msg: fmt.Sprintf(format, args...),
		})
	}

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPanic(info, n) {
				return false
			}
			a.lintCall(fi, n, add)
		case *ast.CompositeLit:
			// Reference-typed literals allocate their backing store
			// unconditionally; struct/array literals only when their
			// address is taken (handled at the UnaryExpr below).
			tv, ok := info.Types[n]
			if !ok || tv.Type == nil {
				break
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				add(n, "composite", typeStr(tv.Type), "slice literal %s allocates its backing array", typeStr(tv.Type))
			case *types.Map:
				add(n, "composite", typeStr(tv.Type), "map literal %s allocates", typeStr(tv.Type))
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				break
			}
			if cl, ok := n.X.(*ast.CompositeLit); ok {
				tv := info.Types[cl]
				add(n, "composite", typeStr(tv.Type), "&%s{...} may escape to the heap — verify with -escape, pool it, or hoist it", typeStr(tv.Type))
			}
		case *ast.FuncLit:
			add(n, "closure", "func-literal", "closure on a hot path: the function value and its captures may allocate")
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				break
			}
			tv, ok := info.Types[n]
			if !ok || tv.Type == nil || tv.Value != nil { // constant-folded concats are free
				break
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				add(n, "string-concat", "concat", "string concatenation allocates — precompute the string or index a name table")
			}
		case *ast.AssignStmt:
			a.lintAssign(info, n, add)
		case *ast.IncDecStmt:
			if ix, ok := n.X.(*ast.IndexExpr); ok && isMapIndex(info, ix) {
				add(n, "map-write", "index", "map write on a hot path: bucket growth allocates — preallocate or use a slice-backed table")
			}
		}
		return true
	})
	return out
}

func fileOf(fi *funcInfo) *ast.File {
	for _, f := range fi.pkg.files {
		if f.Pos() <= fi.decl.Pos() && fi.decl.Pos() <= f.End() {
			return f
		}
	}
	return fi.pkg.files[0]
}

func isMapIndex(info *types.Info, ix *ast.IndexExpr) bool {
	tv, ok := info.Types[ix.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func (a *analyzer) lintAssign(info *types.Info, n *ast.AssignStmt, add func(ast.Node, string, string, string, ...any)) {
	for _, lhs := range n.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok && isMapIndex(info, ix) {
			add(n, "map-write", "index", "map write on a hot path: bucket growth allocates — preallocate or use a slice-backed table")
		}
	}
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
		if tv, ok := info.Types[n.Lhs[0]]; ok && tv.Type != nil {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				add(n, "string-concat", "concat", "string concatenation allocates — precompute the string or index a name table")
			}
		}
	}
}

// lintCall reports the allocation-shaped aspects of one call: allocating
// builtins, string conversions, interface boxing, interface dispatch, and
// large pass-by-value copies.
func (a *analyzer) lintCall(fi *funcInfo, call *ast.CallExpr, add func(ast.Node, string, string, string, ...any)) {
	info := fi.pkg.info

	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "make":
				tv := info.Types[call]
				add(call, "make", typeStr(tv.Type), "make(%s) on a hot path — take from a pool or preallocate", typeStr(tv.Type))
			case "new":
				tv := info.Types[call]
				add(call, "new", typeStr(tv.Type), "new(%s) on a hot path — take from a pool or preallocate", typeStr(tv.Type))
			case "append":
				tv := info.Types[call]
				add(call, "append-growth", typeStr(tv.Type), "append may grow %s on a hot path — preallocate capacity or reuse via [:0]", typeStr(tv.Type))
			}
			return
		}
	}

	// Conversions: only string<->[]byte/[]rune copy and allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.Types[call.Args[0]].Type
		if src != nil && stringBytesConv(src, dst) {
			add(call, "string-conv", typeStr(dst), "%s(...) conversion copies and allocates on a hot path", typeStr(dst))
		}
		return
	}

	// Interface method dispatch: the callee is unknown to the compiler,
	// so pointer arguments (including the receiver) escape.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv().Underlying()) {
				add(call, "iface-call", sel.Sel.Name, "call through interface method %s: arguments escape (unknown callee) — devirtualize with a type switch on the known backends", sel.Sel.Name)
			}
			// Large value receivers are copied per call.
			if sig, ok := s.Obj().Type().(*types.Signature); ok && sig.Recv() != nil {
				rt := sig.Recv().Type()
				if _, ptr := rt.Underlying().(*types.Pointer); !ptr && !types.IsInterface(rt.Underlying()) {
					if sz := a.sizes.Sizeof(rt); sz >= bigCopyBytes {
						add(call, "big-copy", typeStr(rt), "method call copies %d-byte receiver %s — use a pointer receiver", sz, typeStr(rt))
					}
				}
			}
		}
	}

	// Interface boxing and big copies at the parameters.
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				if i == params.Len()-1 {
					pt = params.At(params.Len() - 1).Type()
				}
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		at := info.Types[arg].Type
		if at == nil {
			continue
		}
		if types.IsInterface(pt.Underlying()) && !types.IsInterface(at.Underlying()) {
			if b, ok := at.Underlying().(*types.Basic); !ok || b.Kind() != types.UntypedNil {
				add(arg, "iface-arg", typeStr(at), "%s boxed into interface parameter: the value escapes and may allocate", typeStr(at))
			}
			continue
		}
		switch pt.Underlying().(type) {
		case *types.Pointer, *types.Interface, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Basic:
			continue
		}
		if sz := a.sizes.Sizeof(pt); sz >= bigCopyBytes {
			add(arg, "big-copy", typeStr(pt), "call copies %d-byte %s by value — pass a pointer", sz, typeStr(pt))
		}
	}
}

func stringBytesConv(src, dst types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(src) && isByteish(dst)) || (isByteish(src) && isStr(dst))
}

// ---- escape-analysis cross-check (-escape) ----

// escapeVerdict is one compiler escape diagnostic at a position.
type escapeVerdict struct {
	file string // absolute path
	line int
	heap bool // escapes/moved to heap vs does not escape
	msg  string
}

var escLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// runEscapeAnalysis builds the target directories with -gcflags=-m and
// parses the escape diagnostics.
func runEscapeAnalysis(modRoot string, dirs []string) ([]escapeVerdict, error) {
	args := []string{"build", "-gcflags=-m=1"}
	for _, d := range dirs {
		rel, err := filepath.Rel(modRoot, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("escape analysis target %s is outside module root %s", d, modRoot)
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		// -m output goes to stderr even on success; a real build failure
		// has no usable diagnostics.
		if _, ok := err.(*exec.ExitError); !ok {
			return nil, err
		}
		return nil, fmt.Errorf("go build -gcflags=-m failed: %v\n%s", err, out)
	}
	return parseEscapeOutput(modRoot, string(out)), nil
}

func parseEscapeOutput(modRoot, out string) []escapeVerdict {
	var vs []escapeVerdict
	for _, line := range strings.Split(out, "\n") {
		m := escLineRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		var heap bool
		switch {
		case strings.Contains(msg, "escapes to heap"), strings.Contains(msg, "moved to heap"):
			heap = true
		case strings.Contains(msg, "does not escape"):
			heap = false
		default:
			continue // inlining and other -m chatter
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(modRoot, file)
		}
		ln := 0
		fmt.Sscanf(m[2], "%d", &ln)
		vs = append(vs, escapeVerdict{file: file, line: ln, heap: heap, msg: msg})
	}
	return vs
}

// escapeCheckable marks the finding kinds whose allocation verdict the
// compiler's escape analysis can confirm or refute at the same line.
var escapeCheckable = map[string]bool{
	"composite": true, "new": true, "closure": true, "make": true,
}

// crossCheck applies the compiler verdicts to the static findings:
// stack-proven findings are dropped, and heap escapes inside hot
// functions with no static finding on their line become "escape"
// findings. Returns the surviving findings and the number suppressed.
func (a *analyzer) crossCheck(findings []finding, hot []*funcInfo, verdicts []escapeVerdict) ([]finding, int) {
	type lineKey struct {
		file string
		line int
	}
	heapAt := map[lineKey][]string{}
	stackAt := map[lineKey]bool{}
	for _, v := range verdicts {
		k := lineKey{v.file, v.line}
		if v.heap {
			heapAt[k] = append(heapAt[k], v.msg)
		} else {
			stackAt[k] = true
		}
	}

	flagged := map[lineKey]bool{}
	for _, f := range findings {
		flagged[lineKey{f.pos.Filename, f.pos.Line}] = true
	}

	var out []finding
	suppressed := 0
	for _, f := range findings {
		k := lineKey{f.pos.Filename, f.pos.Line}
		if escapeCheckable[f.kind] && len(heapAt[k]) == 0 && stackAt[k] {
			suppressed++ // compiler proves it stays on the stack
			continue
		}
		out = append(out, f)
	}

	// Reverse direction: compiler-reported escapes in hot code that the
	// shape rules missed. Allow comments apply here too. Iterate the heap
	// verdicts in sorted key order so findings are deterministic.
	heapKeys := make([]lineKey, 0, len(heapAt))
	for k := range heapAt {
		heapKeys = append(heapKeys, k)
	}
	sort.Slice(heapKeys, func(i, j int) bool {
		if heapKeys[i].file != heapKeys[j].file {
			return heapKeys[i].file < heapKeys[j].file
		}
		return heapKeys[i].line < heapKeys[j].line
	})
	for _, fi := range hot {
		file := fileOf(fi)
		allow := allowedKinds(a.fset, file)
		start := a.fset.Position(fi.decl.Pos())
		end := a.fset.Position(fi.decl.End())
		for _, k := range heapKeys {
			if k.file != start.Filename || k.line < start.Line || k.line > end.Line {
				continue
			}
			if flagged[k] {
				continue
			}
			if ak := allow[k.line]; ak != nil && (ak["escape"] || ak["*"]) {
				continue
			}
			msgs := heapAt[k]
			sort.Strings(msgs)
			out = append(out, finding{
				pos:    token.Position{Filename: k.file, Line: k.line},
				fn:     fi.short,
				kind:   "escape",
				detail: msgs[0],
				msg:    fmt.Sprintf("compiler: %s (escape the shape rules missed)", strings.Join(msgs, "; ")),
			})
		}
	}
	sortFindings(out)
	return out, suppressed
}

func sortFindings(fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].pos, fs[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return fs[i].kind < fs[j].kind
	})
}

// ---- baseline ----

type baseline struct {
	Version  int            `json:"version"`
	Findings map[string]int `json:"findings"`
}

func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &baseline{Version: 1, Findings: map[string]int{}}, nil
		}
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, err
	}
	if b.Findings == nil {
		b.Findings = map[string]int{}
	}
	return &b, nil
}

func writeBaseline(path string, counts map[string]int) error {
	b := baseline{Version: 1, Findings: counts}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// newAgainstBaseline returns the findings whose baseline key count
// exceeds the recorded count (all instances of an exceeded key, so the
// report is actionable).
func newAgainstBaseline(findings []finding, base *baseline, modRoot string) []finding {
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.key(modRoot)]++
	}
	var out []finding
	for _, f := range findings {
		k := f.key(modRoot)
		if counts[k] > base.Findings[k] {
			out = append(out, f)
		}
	}
	return out
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, path string) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", ""
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return d, strings.TrimSpace(strings.TrimPrefix(line, "module "))
				}
			}
			return d, ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

// run executes the full analysis; separated from main for tests.
func run(dirs []string, escape bool, baselinePath string, writeBase bool, stdout io.Writer) int {
	abs := make([]string, len(dirs))
	for i, d := range dirs {
		a, err := filepath.Abs(d)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotlint: %v\n", err)
			return 2
		}
		abs[i] = a
	}
	root, mod := findModule(abs[0])
	a := newAnalyzer(root, mod)
	for _, d := range abs {
		if err := a.load(d); err != nil {
			fmt.Fprintf(os.Stderr, "hotlint: %s: %v\n", d, err)
			return 2
		}
	}
	hot := a.hotClosure()
	var findings []finding
	for _, fi := range hot {
		findings = append(findings, a.lintFunc(fi)...)
	}
	sortFindings(findings)

	if escape {
		verdicts, err := runEscapeAnalysis(root, abs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotlint: %v\n", err)
			return 2
		}
		var suppressed int
		findings, suppressed = a.crossCheck(findings, hot, verdicts)
		fmt.Fprintf(stdout, "hotlint: escape cross-check: %d finding(s) compiler-proven stack-only and dropped\n", suppressed)
	}

	counts := map[string]int{}
	for _, f := range findings {
		counts[f.key(root)]++
	}
	if writeBase {
		if err := writeBaseline(baselinePath, counts); err != nil {
			fmt.Fprintf(os.Stderr, "hotlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "hotlint: wrote %d finding key(s) to %s\n", len(counts), baselinePath)
		return 0
	}

	report := findings
	if baselinePath != "" {
		base, err := loadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hotlint: %v\n", err)
			return 2
		}
		report = newAgainstBaseline(findings, base, root)
		if n := len(findings) - len(report); n > 0 {
			fmt.Fprintf(stdout, "hotlint: %d finding(s) matched the baseline %s\n", n, baselinePath)
		}
	}
	for _, f := range report {
		fmt.Fprintf(stdout, "%s: %s: [%s] %s: %s\n", f.pos, f.fn, f.kind, f.msg, "key="+f.key(root))
	}
	fmt.Fprintf(stdout, "hotlint: %d hot function(s), %d finding(s), %d new\n", len(hot), len(findings), len(report))
	if len(report) > 0 {
		return 1
	}
	return 0
}

func main() {
	escape := flag.Bool("escape", false, "cross-check findings against the compiler's escape analysis (go build -gcflags=-m)")
	baselinePath := flag.String("baseline", "", "baseline JSON file; only findings not in the baseline fail")
	writeBase := flag.Bool("write-baseline", false, "record current findings into -baseline and exit 0")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: hotlint [-escape] [-baseline file] [-write-baseline] DIR...")
		os.Exit(2)
	}
	if *writeBase && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "hotlint: -write-baseline requires -baseline")
		os.Exit(2)
	}
	os.Exit(run(flag.Args(), *escape, *baselinePath, *writeBase, os.Stdout))
}
