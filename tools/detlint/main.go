// Command detlint is the repository's determinism linter. The simulator's
// core guarantee — identical results for identical seeds, across engines
// and protocols — is easy to break with three innocuous Go idioms, none of
// which the compiler or vet objects to:
//
//   - wall-clock time (time.Now and friends) leaking into simulated state
//     or output;
//   - the process-global math/rand source, which is shared, unseeded (or
//     racily seeded) and order-dependent, instead of an explicitly seeded
//     rand.New(rand.NewSource(seed));
//   - order-sensitive accumulation inside a map range: Go randomizes map
//     iteration order per run, so building strings, writing to buffers, or
//     collecting the *values* into a slice inside `for k, v := range m`
//     produces run-dependent results. (Collecting just the keys and
//     sorting them afterwards is the sanctioned pattern and is not
//     flagged.)
//
// detlint type-checks the named package directories using only the
// standard library: imports within this module are resolved by
// type-checking their directories recursively, everything else through
// go/importer's source importer. Test files are skipped. Any finding makes
// the exit status 1.
//
// Usage: detlint DIR...
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type finding struct {
	pos  token.Position
	kind string
	msg  string
}

type linter struct {
	fset    *token.FileSet
	modRoot string // directory containing go.mod
	modPath string // module path from go.mod
	cache   map[string]*types.Package
	std     types.Importer
}

func newLinter(modRoot, modPath string) *linter {
	fset := token.NewFileSet()
	return &linter{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		cache:   map[string]*types.Package{},
		std:     importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer over the hybrid resolution scheme.
func (l *linter) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		dir := filepath.Join(l.modRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/"))
		pkg, _, _, err := l.check(dir, path, nil)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// check parses and type-checks one package directory. Test files are
// ignored; info may be nil when the caller only needs the package for an
// import.
func (l *linter) check(dir, path string, info *types.Info) (*types.Package, []*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, "", err
	}
	var files []*ast.File
	var name string
	for _, e := range entries {
		fn := e.Name()
		if e.IsDir() || !strings.HasSuffix(fn, ".go") || strings.HasSuffix(fn, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, fn), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, "", err
		}
		if f.Name.Name == "main" && path != "main" {
			// A command directory imported by path would not type-check as
			// a library; commands are only ever named directly.
			path = "main"
		}
		name = f.Name.Name
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, "", fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // best-effort: keep partial type info
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil && pkg == nil {
		return nil, nil, "", err
	}
	return pkg, files, name, nil
}

// lintDir type-checks and lints one directory, returning its findings.
func (l *linter) lintDir(dir string) ([]finding, error) {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	importPath := dir
	if l.modPath != "" {
		if rel, err := filepath.Rel(l.modRoot, dir); err == nil && !strings.HasPrefix(rel, "..") {
			importPath = l.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	_, files, _, err := l.check(dir, importPath, info)
	if err != nil {
		return nil, err
	}
	var out []finding
	for _, f := range files {
		out = append(out, lintFile(l.fset, f, info)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].pos, out[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return out, nil
}

// pkgOf resolves a selector like time.Now to its package path, when the
// receiver is a package name.
func pkgOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// statefulRand is the set of math/rand package-level functions backed by
// the shared global source. Constructors (New, NewSource, NewZipf) are the
// sanctioned alternative and stay legal.
var statefulRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func lintFile(fset *token.FileSet, f *ast.File, info *types.Info) []finding {
	// A comment containing "detlint:allow" suppresses findings on its own
	// line and the next — for provably-sound cases the heuristics cannot
	// see (e.g. collecting map values that are sorted by a total key
	// immediately afterwards). Each use should say why it is safe.
	allowed := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "detlint:allow") {
				line := fset.Position(c.Pos()).Line
				allowed[line] = true
				allowed[line+1] = true
			}
		}
	}
	var out []finding
	add := func(n ast.Node, kind, format string, args ...any) {
		pos := fset.Position(n.Pos())
		if allowed[pos.Line] {
			return
		}
		out = append(out, finding{pos: pos, kind: kind, msg: fmt.Sprintf(format, args...)})
	}

	isMapRange := func(rs *ast.RangeStmt) bool {
		tv, ok := info.Types[rs.X]
		if !ok || tv.Type == nil {
			return false
		}
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	}
	isString := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}

	// lintMapRangeBody flags order-sensitive accumulation in the body of a
	// range over a map, whose value variable (if any) is val.
	lintMapRangeBody := func(body *ast.BlockStmt, val *ast.Ident) {
		valObj := info.Defs[val] // nil for `=` ranges and when val is nil
		usesVal := func(e ast.Expr) bool {
			if val == nil {
				return false
			}
			found := false
			ast.Inspect(e, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == val.Name &&
					(valObj == nil || info.Uses[id] == valObj) {
					found = true
				}
				return !found
			})
			return found
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// String concatenation accumulates in iteration order.
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(n.Lhs[0]) {
					add(n, "map-range-string", "string built up inside a map range: iteration order is randomized — collect and sort the keys first")
				}
			case *ast.CallExpr:
				switch fun := n.Fun.(type) {
				case *ast.SelectorExpr:
					// Writes into a stream or builder are order-sensitive.
					if p := pkgOf(info, fun); p == "fmt" && strings.HasPrefix(fun.Sel.Name, "Fprint") {
						add(n, "map-range-write", "fmt.%s inside a map range: iteration order is randomized — collect and sort the keys first", fun.Sel.Name)
					}
					switch fun.Sel.Name {
					case "WriteString", "WriteByte", "WriteRune":
						add(n, "map-range-write", "%s inside a map range: iteration order is randomized — collect and sort the keys first", fun.Sel.Name)
					}
				case *ast.Ident:
					// Appending the *value* leaks iteration order into the
					// slice; appending just the key (then sorting) is the
					// sanctioned pattern.
					_, isBuiltin := info.Uses[fun].(*types.Builtin)
					if fun.Name == "append" && (isBuiltin || info.Uses[fun] == nil) && len(n.Args) > 1 {
						for _, a := range n.Args[1:] {
							if usesVal(a) {
								add(n, "map-range-append-value", "map value appended to a slice inside a map range: the slice order is randomized — iterate sorted keys instead")
								break
							}
						}
					}
				}
			}
			return true
		})
	}

	// Pass 1: wall-clock time and the global RNG, anywhere in the file.
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch pkgOf(info, sel) {
		case "time":
			switch sel.Sel.Name {
			case "Now", "Since", "Until":
				add(call, "wall-clock", "time.%s in simulation code: wall-clock time is nondeterministic — derive time from the simulated clock", sel.Sel.Name)
			}
		case "math/rand":
			if statefulRand[sel.Sel.Name] {
				add(call, "global-rand", "rand.%s uses the shared global source: seed an explicit rand.New(rand.NewSource(seed)) instead", sel.Sel.Name)
			}
		}
		return true
	})

	// Pass 2: order-sensitive accumulation inside map ranges. Nested map
	// ranges get visited twice (once per enclosing range); duplicate
	// findings are collapsed below.
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(rs) {
			return true
		}
		var val *ast.Ident
		if id, ok := rs.Value.(*ast.Ident); ok && id.Name != "_" {
			val = id
		}
		lintMapRangeBody(rs.Body, val)
		return true
	})

	seen := map[string]bool{}
	dedup := out[:0]
	for _, fd := range out {
		key := fmt.Sprintf("%s|%s", fd.pos, fd.kind)
		if !seen[key] {
			seen[key] = true
			dedup = append(dedup, fd)
		}
	}
	return dedup
}

// findModule walks up from dir to the enclosing go.mod, returning its
// directory and module path.
func findModule(dir string) (root, path string) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", ""
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return d, strings.TrimSpace(strings.TrimPrefix(line, "module "))
				}
			}
			return d, ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: detlint DIR...")
		os.Exit(2)
	}
	dirs := os.Args[1:]
	root, mod := findModule(dirs[0])
	l := newLinter(root, mod)
	bad := false
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			os.Exit(2)
		}
		fs, err := l.lintDir(abs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, fd := range fs {
			bad = true
			fmt.Printf("%s: %s: %s\n", fd.pos, fd.kind, fd.msg)
		}
	}
	if bad {
		os.Exit(1)
	}
}
