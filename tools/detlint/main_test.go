package main

import (
	"os"
	"path/filepath"
	"testing"
)

// lintFixture writes the files into a fresh package directory and lints it.
func lintFixture(t *testing.T, files map[string]string) []finding {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l := newLinter("", "")
	fs, err := l.lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func kinds(fs []finding) map[string]int {
	m := map[string]int{}
	for _, f := range fs {
		m[f.kind]++
	}
	return m
}

func TestDetlintFlagsNondeterminism(t *testing.T) {
	fs := lintFixture(t, map[string]string{"bad.go": `package fixture

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

func clock() int64 { return time.Now().UnixNano() }

func draw() int { return rand.Intn(6) }

func describe(m map[int]string) string {
	out := ""
	for k, v := range m {
		out += fmt.Sprintf("%d=%s ", k, v)
	}
	return out
}

func write(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		fmt.Fprintf(&b, "%s ", k)
	}
	return b.String()
}

func collect(m map[int]int) []int {
	var vs []int
	for _, v := range m {
		vs = append(vs, v)
	}
	return vs
}
`})
	got := kinds(fs)
	want := map[string]int{
		"wall-clock":             1,
		"global-rand":            1,
		"map-range-string":       1,
		"map-range-write":        1,
		"map-range-append-value": 1,
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("kind %q: %d findings, want %d\nall: %+v", k, got[k], n, fs)
		}
	}
	if len(fs) != 5 {
		t.Errorf("%d findings total, want 5: %+v", len(fs), fs)
	}
}

func TestDetlintAllowsSanctionedPatterns(t *testing.T) {
	fs := lintFixture(t, map[string]string{"good.go": `package fixture

import (
	"fmt"
	"math/rand"
	"sort"
)

// The sanctioned map-iteration pattern: collect keys, sort, then range the
// slice.
func describe(m map[int]string) string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%d=%s ", k, m[k])
	}
	return out
}

// Explicitly seeded RNGs are fine.
func draw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Commutative accumulation over a map is order-insensitive.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
`})
	if len(fs) != 0 {
		t.Fatalf("clean fixture produced findings: %+v", fs)
	}
}

func TestDetlintAllowDirective(t *testing.T) {
	fs := lintFixture(t, map[string]string{"allow.go": `package fixture

import "sort"

type pair struct{ k, v int }

func collect(m map[int]int) []pair {
	var ps []pair
	for k, v := range m {
		// detlint:allow — sorted below by the total key k.
		ps = append(ps, pair{k, v})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	return ps
}
`})
	if len(fs) != 0 {
		t.Fatalf("allow directive ignored: %+v", fs)
	}
}

func TestDetlintSkipsTestFiles(t *testing.T) {
	fs := lintFixture(t, map[string]string{
		"code.go": `package fixture

func ok() {}
`,
		"code_test.go": `package fixture

import "time"

var when = time.Now()
`,
	})
	if len(fs) != 0 {
		t.Fatalf("test file was linted: %+v", fs)
	}
}

// TestDetlintRepoPackages is the in-repo acceptance gate: the simulator's
// deterministic packages must stay clean.
func TestDetlintRepoPackages(t *testing.T) {
	root, mod := findModule(".")
	if root == "" || mod == "" {
		t.Fatal("module root not found")
	}
	l := newLinter(root, mod)
	for _, rel := range []string{"internal/core", "internal/sim", "internal/modelcheck"} {
		fs, err := l.lintDir(filepath.Join(root, rel))
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, f := range fs {
			t.Errorf("%s: %s: %s: %s", rel, f.pos, f.kind, f.msg)
		}
	}
}
